//! Classic bit-vector dataflow: reaching definitions, def-use chains,
//! and backward liveness.
//!
//! Definition sites are instruction indices plus one *entry* pseudo-def
//! per architectural register (the VM zero-initialises the register
//! files, so "defined at entry" is a real, executable definition — the
//! linter reports uses of it as uninitialised-read warnings all the
//! same). Liveness treats `halt` as reading every register: the
//! experiment harness inspects final register state, so a value that
//! survives to `halt` is not dead.

use fua_isa::{Program, Reg};

use crate::Cfg;

/// Total number of architectural registers across both files.
const NUM_REGS: usize = 64;

/// Where a register value may originate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefSite {
    /// The register's zero-initialised value at program entry.
    Entry(Reg),
    /// The write performed by this instruction index.
    Inst(usize),
}

/// One register use inside an instruction, with every definition that
/// may reach it.
#[derive(Debug, Clone)]
pub struct UseInfo {
    /// The register being read.
    pub reg: Reg,
    /// All definitions that may flow into this use.
    pub defs: Vec<DefSite>,
}

/// Reaching-definition and liveness facts for one program.
///
/// # Examples
///
/// ```
/// use fua_analysis::{Cfg, DataFlow, DefSite};
/// use fua_isa::{IntReg, ProgramBuilder};
///
/// let (r1, r2) = (IntReg::new(1), IntReg::new(2));
/// let mut b = ProgramBuilder::new();
/// b.li(r1, 5);
/// b.add(r2, r1, r1);
/// b.halt();
/// let program = b.build().unwrap();
///
/// let flow = DataFlow::run(&program, &Cfg::build(&program));
/// let uses = flow.uses_of(1);
/// assert_eq!(uses.len(), 2);
/// assert_eq!(uses[0].defs, vec![DefSite::Inst(0)]);
/// ```
#[derive(Debug, Clone)]
pub struct DataFlow {
    uses: Vec<Vec<UseInfo>>,
    /// Per instruction: the registers live *after* it executes, as a
    /// dense bitmask over [`Reg::dense_index`].
    live_after: Vec<u64>,
}

/// A dense bit set over definition sites.
type DefSet = Vec<u64>;

fn set_bit(s: &mut DefSet, i: usize) {
    s[i / 64] |= 1 << (i % 64);
}

fn clear_bit(s: &mut DefSet, i: usize) {
    s[i / 64] &= !(1 << (i % 64));
}

fn get_bit(s: &[u64], i: usize) -> bool {
    s[i / 64] >> (i % 64) & 1 == 1
}

fn union_into(dst: &mut DefSet, src: &[u64]) -> bool {
    let mut changed = false;
    for (d, &s) in dst.iter_mut().zip(src) {
        let n = *d | s;
        changed |= n != *d;
        *d = n;
    }
    changed
}

impl DataFlow {
    /// Runs both analyses over `program`.
    pub fn run(program: &Program, cfg: &Cfg) -> Self {
        let n = program.len();
        let ndefs = n + NUM_REGS;
        let words = ndefs.div_ceil(64);
        let insts = program.insts();

        // Definition sites per register (dense index), entry defs last.
        let mut defs_of: Vec<Vec<usize>> = vec![Vec::new(); NUM_REGS];
        for (i, inst) in insts.iter().enumerate() {
            if let Some(d) = inst.dst {
                defs_of[d.dense_index()].push(i);
            }
        }
        for (r, defs) in defs_of.iter_mut().enumerate() {
            defs.push(n + r);
        }

        // Forward reaching definitions, block-level fixpoint.
        let nblocks = cfg.blocks().len();
        let mut in_sets: Vec<DefSet> = vec![vec![0; words]; nblocks];
        let mut out_sets: Vec<DefSet> = vec![vec![0; words]; nblocks];
        if nblocks > 0 {
            for r in 0..NUM_REGS {
                set_bit(&mut in_sets[0], n + r);
            }
        }
        let apply_block = |b: usize, start: &[u64]| -> DefSet {
            let mut cur = start.to_vec();
            for i in cfg.blocks()[b].insts() {
                if let Some(d) = insts[i].dst {
                    for &site in &defs_of[d.dense_index()] {
                        clear_bit(&mut cur, site);
                    }
                    set_bit(&mut cur, i);
                }
            }
            cur
        };
        let mut worklist: Vec<usize> = (0..nblocks).collect();
        while let Some(b) = worklist.pop() {
            let out = apply_block(b, &in_sets[b]);
            if out != out_sets[b] {
                out_sets[b] = out;
                for &s in &cfg.blocks()[b].succs {
                    if union_into(&mut in_sets[s], &out_sets[b]) && !worklist.contains(&s) {
                        worklist.push(s);
                    }
                }
            }
        }

        // Per-use def chains.
        let mut uses: Vec<Vec<UseInfo>> = vec![Vec::new(); n];
        for (b, block) in cfg.blocks().iter().enumerate() {
            let mut cur = in_sets[b].clone();
            for i in block.insts() {
                let inst = &insts[i];
                for reg in [inst.src1.reg(), inst.src2.reg()].into_iter().flatten() {
                    let defs = defs_of[reg.dense_index()]
                        .iter()
                        .filter(|&&site| get_bit(&cur, site))
                        .map(|&site| {
                            if site >= n {
                                DefSite::Entry(reg)
                            } else {
                                DefSite::Inst(site)
                            }
                        })
                        .collect();
                    uses[i].push(UseInfo { reg, defs });
                }
                if let Some(d) = inst.dst {
                    for &site in &defs_of[d.dense_index()] {
                        clear_bit(&mut cur, site);
                    }
                    set_bit(&mut cur, i);
                }
            }
        }

        // Backward liveness over registers (single u64 mask).
        let all_live = u64::MAX; // NUM_REGS == 64 exactly fills the mask

        let mut live_in: Vec<u64> = vec![0; nblocks];
        let mut live_after = vec![0u64; n];
        let transfer_backward = |b: usize, live_in: &[u64], record: &mut [u64]| -> u64 {
            let block = &cfg.blocks()[b];
            // Falling off the end of the text faults; registers are then
            // observable, so the program-exit edge is all-live.
            let mut live =
                if block.succs.is_empty() && insts[block.end - 1].op != fua_isa::Opcode::Halt {
                    all_live
                } else {
                    block
                        .succs
                        .iter()
                        .map(|&s| live_in[s])
                        .fold(0, |a, x| a | x)
                };
            for i in block.insts().rev() {
                let inst = &insts[i];
                if inst.op == fua_isa::Opcode::Halt {
                    // The harness reads final register state.
                    live = all_live;
                }
                record[i] = live;
                if let Some(d) = inst.dst {
                    live &= !(1 << d.dense_index());
                }
                for reg in [inst.src1.reg(), inst.src2.reg()].into_iter().flatten() {
                    live |= 1 << reg.dense_index();
                }
            }
            live
        };
        let mut worklist: Vec<usize> = (0..nblocks).collect();
        let mut scratch = vec![0u64; n];
        while let Some(b) = worklist.pop() {
            let new_in = transfer_backward(b, &live_in, &mut scratch);
            if new_in != live_in[b] {
                live_in[b] = new_in;
                for &p in &cfg.blocks()[b].preds {
                    if !worklist.contains(&p) {
                        worklist.push(p);
                    }
                }
            }
        }
        // Final recording pass with the fixpoint solution.
        for b in 0..nblocks {
            transfer_backward(b, &live_in, &mut live_after);
        }

        DataFlow { uses, live_after }
    }

    /// The register uses of instruction `idx` with their reaching
    /// definitions, in source-slot order.
    pub fn uses_of(&self, idx: usize) -> &[UseInfo] {
        &self.uses[idx]
    }

    /// Whether register `reg` is live immediately after instruction
    /// `idx` executes.
    pub fn is_live_after(&self, idx: usize, reg: Reg) -> bool {
        self.live_after[idx] >> reg.dense_index() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::{IntReg, ProgramBuilder};

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    #[test]
    fn uninitialised_use_reaches_the_entry_def() {
        let mut b = ProgramBuilder::new();
        b.add(r(2), r(1), r(1)); // r1 never written
        b.halt();
        let p = b.build().unwrap();
        let flow = DataFlow::run(&p, &Cfg::build(&p));
        let uses = flow.uses_of(0);
        assert!(uses
            .iter()
            .all(|u| u.defs == vec![DefSite::Entry(Reg::Int(r(1)))]));
    }

    #[test]
    fn defs_merge_at_join_points() {
        let mut b = ProgramBuilder::new();
        let other = b.new_label();
        let join = b.new_label();
        b.li(r(1), 1);
        b.bgtz(r(1), other);
        b.li(r(2), 5); // def A
        b.j(join);
        b.bind(other);
        b.li(r(2), -5); // def B
        b.bind(join);
        b.add(r(3), r(2), r(2));
        let end_label_uses_halt = b.new_label();
        b.bind(end_label_uses_halt);
        b.halt();
        let p = b.build().unwrap();
        let flow = DataFlow::run(&p, &Cfg::build(&p));
        let add_idx = 5;
        assert_eq!(p.inst(add_idx).op, fua_isa::Opcode::Add);
        let uses = flow.uses_of(add_idx);
        let defs = &uses[0].defs;
        assert!(defs.contains(&DefSite::Inst(2)));
        assert!(defs.contains(&DefSite::Inst(4)));
        assert!(!defs.iter().any(|d| matches!(d, DefSite::Entry(_))));
    }

    #[test]
    fn overwritten_value_is_dead() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 5); // dead: overwritten below without a read
        b.li(r(1), 6);
        b.halt();
        let p = b.build().unwrap();
        let flow = DataFlow::run(&p, &Cfg::build(&p));
        assert!(!flow.is_live_after(0, Reg::Int(r(1))));
        assert!(flow.is_live_after(1, Reg::Int(r(1))), "live into halt");
    }

    #[test]
    fn loop_carried_value_stays_live() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.li(r(1), 3);
        b.bind(top);
        b.addi(r(1), r(1), -1);
        b.bgtz(r(1), top);
        b.halt();
        let p = b.build().unwrap();
        let flow = DataFlow::run(&p, &Cfg::build(&p));
        assert!(flow.is_live_after(0, Reg::Int(r(1))));
        assert!(flow.is_live_after(1, Reg::Int(r(1))));
    }
}
