//! A static linter for [`fua_isa::Program`]s.
//!
//! The checks target the hazards that matter for this repository's
//! workload kernels: values read before any write (the VM silently
//! supplies zero), writes that no execution can observe, code the CFG
//! proves unreachable, control transfers that fault at runtime, and
//! loops that can only end at the execution limit.

use std::fmt;

use fua_isa::{Opcode, Program};

use crate::{Cfg, DataFlow, DefSite};

/// The category of a lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// A register is read on some path before any instruction writes it.
    UninitRead,
    /// A register write that no execution can observe.
    DeadWrite,
    /// A basic block unreachable from the program entry.
    UnreachableBlock,
    /// A control transfer targeting an index outside the text.
    TargetOutOfRange,
    /// Execution can run past the last instruction (PC range fault).
    FallsOffEnd,
    /// No `halt` is reachable from the entry: the program can only end
    /// at the execution limit.
    NoHaltReachable,
    /// A reachable region from which no `halt` is reachable: entering
    /// it guarantees an execution-limit exit.
    InfiniteLoop,
}

impl LintKind {
    /// Whether the finding describes a runtime fault or guaranteed
    /// mis-termination (as opposed to dead or suspicious code).
    pub fn is_error(self) -> bool {
        matches!(
            self,
            LintKind::TargetOutOfRange | LintKind::FallsOffEnd | LintKind::NoHaltReachable
        )
    }
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LintKind::UninitRead => "uninitialised-read",
            LintKind::DeadWrite => "dead-write",
            LintKind::UnreachableBlock => "unreachable-block",
            LintKind::TargetOutOfRange => "target-out-of-range",
            LintKind::FallsOffEnd => "falls-off-end",
            LintKind::NoHaltReachable => "no-halt-reachable",
            LintKind::InfiniteLoop => "infinite-loop",
        };
        f.write_str(s)
    }
}

/// One linter finding.
#[derive(Debug, Clone)]
pub struct Lint {
    /// The category.
    pub kind: LintKind,
    /// The instruction the finding is anchored at, if any.
    pub inst: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inst {
            Some(i) => write!(f, "[{}] at #{i}: {}", self.kind, self.message),
            None => write!(f, "[{}]: {}", self.kind, self.message),
        }
    }
}

/// Lints `program`, returning every finding (empty = clean).
///
/// # Examples
///
/// ```
/// use fua_analysis::{lint_program, LintKind};
/// use fua_isa::{IntReg, ProgramBuilder};
///
/// let (r1, r2) = (IntReg::new(1), IntReg::new(2));
/// let mut b = ProgramBuilder::new();
/// b.add(r2, r1, r1); // r1 read before any write
/// b.halt();
/// let program = b.build().unwrap();
///
/// let lints = lint_program(&program);
/// assert!(lints.iter().any(|l| l.kind == LintKind::UninitRead));
/// ```
pub fn lint_program(program: &Program) -> Vec<Lint> {
    let cfg = Cfg::build(program);
    let flow = DataFlow::run(program, &cfg);
    let reachable = cfg.reachable();
    let reaches_halt = cfg.reaches_halt(program);
    let insts = program.insts();
    let n = insts.len();
    let mut lints = Vec::new();

    // Control-transfer validity and fall-through past the end.
    for (i, inst) in insts.iter().enumerate() {
        if inst.op.is_control() && inst.op != Opcode::Halt {
            let t = inst.imm;
            if !(0..n as i32).contains(&t) {
                lints.push(Lint {
                    kind: LintKind::TargetOutOfRange,
                    inst: Some(i),
                    message: format!("{} targets index {t}, text is 0..{n}", inst.op),
                });
            }
        }
    }
    if let Some(last) = insts.last() {
        // A trailing branch still falls through on its not-taken path.
        if !matches!(last.op, Opcode::Halt | Opcode::J) {
            lints.push(Lint {
                kind: LintKind::FallsOffEnd,
                inst: Some(n - 1),
                message: "execution can run past the last instruction".into(),
            });
        }
    }

    // Reachability.
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !reachable[b] {
            lints.push(Lint {
                kind: LintKind::UnreachableBlock,
                inst: Some(block.start),
                message: format!(
                    "instructions {}..{} are unreachable from the entry",
                    block.start, block.end
                ),
            });
        }
    }

    // Halt reachability: entry first, then reachable traps.
    if !cfg.blocks().is_empty() && !reaches_halt[0] {
        lints.push(Lint {
            kind: LintKind::NoHaltReachable,
            inst: None,
            message: "no halt is reachable from the entry".into(),
        });
    } else {
        for (b, block) in cfg.blocks().iter().enumerate() {
            if reachable[b] && !reaches_halt[b] {
                lints.push(Lint {
                    kind: LintKind::InfiniteLoop,
                    inst: Some(block.start),
                    message: format!(
                        "block at {} is reachable but cannot reach a halt",
                        block.start
                    ),
                });
            }
        }
    }

    // Uninitialised reads and dead writes, reachable code only (dead
    // code already gets its own finding).
    for (i, inst) in insts.iter().enumerate() {
        if !reachable[cfg.block_of(i)] {
            continue;
        }
        let mut flagged: Vec<fua_isa::Reg> = Vec::new();
        for u in flow.uses_of(i) {
            let entry = u
                .defs
                .iter()
                .filter(|d| matches!(d, DefSite::Entry(_)))
                .count();
            // One finding per register even when both source slots read
            // it (e.g. `add r2, r1, r1`).
            if entry > 0 && !flagged.contains(&u.reg) {
                flagged.push(u.reg);
                let reg = match u.reg {
                    fua_isa::Reg::Int(r) => format!("r{}", r.index()),
                    fua_isa::Reg::Fp(r) => format!("f{}", r.index()),
                };
                // When the entry value is the *only* reaching definition
                // the read is uninitialised on every path; otherwise only
                // some paths miss the write.
                let message = if entry == u.defs.len() {
                    format!("{reg} is read before it is written (the VM supplies 0)")
                } else {
                    format!("{reg} may be read before it is written (the VM supplies 0)")
                };
                lints.push(Lint {
                    kind: LintKind::UninitRead,
                    inst: Some(i),
                    message,
                });
            }
        }
        if let Some(d) = inst.dst {
            if !flow.is_live_after(i, d) {
                lints.push(Lint {
                    kind: LintKind::DeadWrite,
                    inst: Some(i),
                    message: format!("{} writes a value no execution observes", inst.op),
                });
            }
        }
    }

    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::{IntReg, ProgramBuilder};

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    fn kinds(lints: &[Lint]) -> Vec<LintKind> {
        lints.iter().map(|l| l.kind).collect()
    }

    #[test]
    fn clean_program_has_no_findings() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.li(r(1), 3);
        b.li(r(2), 0);
        b.bind(top);
        b.add(r(2), r(2), r(1));
        b.addi(r(1), r(1), -1);
        b.bgtz(r(1), top);
        b.halt();
        let p = b.build().unwrap();
        assert!(lint_program(&p).is_empty(), "{:?}", lint_program(&p));
    }

    #[test]
    fn uninit_read_is_flagged() {
        let mut b = ProgramBuilder::new();
        b.add(r(2), r(1), r(1));
        b.halt();
        let p = b.build().unwrap();
        assert!(kinds(&lint_program(&p)).contains(&LintKind::UninitRead));
    }

    #[test]
    fn a_read_with_no_reaching_write_is_definite() {
        let mut b = ProgramBuilder::new();
        b.add(r(2), r(1), r(1));
        b.halt();
        let p = b.build().unwrap();
        let lints = lint_program(&p);
        let uninit: Vec<_> = lints
            .iter()
            .filter(|l| l.kind == LintKind::UninitRead)
            .collect();
        assert_eq!(uninit.len(), 1);
        assert!(
            uninit[0].message.starts_with("r1 is read"),
            "{}",
            uninit[0].message
        );
    }

    #[test]
    fn a_read_written_on_only_one_path_is_a_maybe() {
        // The branch skips the write, so the entry value reaches the
        // read alongside the `li` — flagged, but only as a "may".
        let mut b = ProgramBuilder::new();
        let join = b.new_label();
        b.li(r(2), 1);
        b.bgtz(r(2), join);
        b.li(r(1), 7);
        b.bind(join);
        b.add(r(3), r(1), r(1));
        b.halt();
        let p = b.build().unwrap();
        let lints = lint_program(&p);
        let uninit: Vec<_> = lints
            .iter()
            .filter(|l| l.kind == LintKind::UninitRead)
            .collect();
        assert_eq!(uninit.len(), 1);
        assert!(
            uninit[0].message.starts_with("r1 may be read"),
            "{}",
            uninit[0].message
        );
    }

    #[test]
    fn a_read_written_on_every_path_is_clean() {
        let mut b = ProgramBuilder::new();
        let other = b.new_label();
        let join = b.new_label();
        b.li(r(2), 1);
        b.bgtz(r(2), other);
        b.li(r(1), 7);
        b.j(join);
        b.bind(other);
        b.li(r(1), 9);
        b.bind(join);
        b.add(r(3), r(1), r(1));
        b.halt();
        let p = b.build().unwrap();
        assert!(!kinds(&lint_program(&p)).contains(&LintKind::UninitRead));
    }

    #[test]
    fn dead_write_is_flagged() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 5);
        b.li(r(1), 6);
        b.halt();
        let p = b.build().unwrap();
        let lints = lint_program(&p);
        let dead: Vec<_> = lints
            .iter()
            .filter(|l| l.kind == LintKind::DeadWrite)
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].inst, Some(0));
    }

    #[test]
    fn unreachable_block_is_flagged() {
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        b.j(end);
        b.li(r(1), 1);
        b.bind(end);
        b.halt();
        let p = b.build().unwrap();
        assert!(kinds(&lint_program(&p)).contains(&LintKind::UnreachableBlock));
    }

    #[test]
    fn inescapable_loop_is_flagged() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.bind(top);
        b.addi(r(1), r(1), 1);
        b.j(top);
        b.halt();
        let p = b.build().unwrap();
        let ks = kinds(&lint_program(&p));
        assert!(ks.contains(&LintKind::NoHaltReachable));
        assert!(ks.contains(&LintKind::UnreachableBlock), "the halt");
    }

    #[test]
    fn value_observed_through_store_is_not_dead() {
        let mut b = ProgramBuilder::new();
        let slot = b.alloc_data(4);
        b.li(r(1), 7);
        b.li(r(2), slot);
        b.sw(r(1), r(2), 0);
        b.halt();
        let p = b.build().unwrap();
        assert!(!kinds(&lint_program(&p)).contains(&LintKind::DeadWrite));
    }
}
