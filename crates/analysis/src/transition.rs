//! The abstract *bit-transition* domain and the static switched-bit
//! estimator built on it.
//!
//! The dynamic power model charges every FU issue the Hamming distance
//! between the operands being latched and whatever the module's input
//! latches held before ([`fua_power`]'s `ModulePorts`). This module
//! bounds that charge **statically**: each operand port is abstracted as
//! a [`BitWord`] — a per-bit known/unknown mask over the power-model
//! bits (all 32 for the integer bus, the 52 mantissa bits for the FP
//! bus) — derived from the information-bit fixpoint's
//! [`AbsInt`]/[`AbsFp`] lattice values. A bit can only *fail* to toggle
//! when it is statically known, with the same value, in both the word
//! being latched and every word that could already be on the latch; the
//! bound counts everything else.
//!
//! The previous latch contents are over-approximated per FU class by
//! joining the port words of **every** reachable operation of that
//! class: whatever operation last used any module of the class, its
//! ports are admitted by the join. The [`SwapModel`] picks which operand
//! orders feed that join: the naive machine latches program order only
//! ([`SwapModel::Direct`]); every hardware-swap scheme may latch a
//! commutative operation in either order ([`SwapModel::Either`] — the
//! simulator's rule, policy, and multiplier swaps all check
//! `FuOp::commutative` before touching an operand pair, so
//! non-commutative operations stay direct under every scheme).
//!
//! The resulting per-PC bound is *per executed operation* and
//! module-agnostic: it holds whichever module of the class the steering
//! policy picks, so it also bounds each module's share. The first latch
//! of a module costs 0 dynamically, which every non-negative bound
//! covers. See DESIGN.md §"Static switched-bit estimation" for the full
//! soundness argument; `tests/estimator_soundness.rs` property-tests it
//! against exact dynamic attribution for every workload × scheme × swap
//! setting.

use fua_isa::{Case, FuClass, Program, FP_MANTISSA_BITS, INT_BITS};

use crate::{AbsFp, AbsInt, InfoBitAnalysis};

/// Mask of the power-model bits of an FP-bus word (the 52 mantissa
/// bits; exponent and sign never reach the power model).
const FP_MASK: u64 = (1u64 << FP_MANTISSA_BITS) - 1;

/// Mask of the power-model bits of an integer-bus word.
const INT_MASK: u64 = (1u64 << INT_BITS) - 1;

/// An abstract operand word: per-bit knowledge over the power-model
/// bits a port's bus carries.
///
/// Bit `i` of `known` set means bit `i` of every concrete word this
/// abstraction admits equals bit `i` of `value`; unknown bits of
/// `value` are kept 0 so equal abstractions compare equal.
///
/// # Examples
///
/// ```
/// use fua_analysis::{AbsInt, BitWord};
///
/// let five = BitWord::from_int(AbsInt::Const(5));
/// assert!(five.admits(5));
/// assert!(!five.admits(4));
/// // Joining 5 with an unknown-but-small value keeps the high bits.
/// let small = BitWord::from_int(AbsInt::NonNegBits(3));
/// let j = five.join(small);
/// assert!(j.admits(7) && j.admits(5) && !j.admits(8));
/// // At most the 3 unknown low bits can toggle between them.
/// assert_eq!(five.toggle_bound(small), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitWord {
    /// Mask of bits whose value is statically known.
    pub known: u64,
    /// The known bits' values (0 on unknown bits).
    pub value: u64,
    /// Power-model width of the bus: [`INT_BITS`] or
    /// [`FP_MANTISSA_BITS`].
    pub width: u32,
}

impl BitWord {
    /// The all-unknown word of the given bus width.
    #[inline]
    pub fn unknown(width: u32) -> Self {
        BitWord {
            known: 0,
            value: 0,
            width,
        }
    }

    /// Mask of the bits the bus carries.
    #[inline]
    fn mask(self) -> u64 {
        if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Abstracts an integer-bus operand from the sign/width lattice:
    /// constants are fully known, `NonNegBits(k)` pins bits `k..32` to
    /// zero, `Neg` pins the sign bit.
    pub fn from_int(v: AbsInt) -> Self {
        let (known, value) = match v {
            AbsInt::Const(c) => (INT_MASK, c as u32 as u64),
            AbsInt::NonNegBits(k) => (INT_MASK & !((1u64 << k) - 1), 0),
            AbsInt::Neg => (1u64 << (INT_BITS - 1), 1u64 << (INT_BITS - 1)),
            // ⊥ admits no executions; all-unknown is trivially sound.
            AbsInt::Bot | AbsInt::Top => (0, 0),
        };
        BitWord {
            known,
            value,
            width: INT_BITS,
        }
    }

    /// Abstracts an FP-bus operand from the low-mantissa lattice:
    /// constants pin all 52 mantissa bits, `Zeros` pins the low four.
    pub fn from_fp(v: AbsFp) -> Self {
        let (known, value) = match v {
            AbsFp::Const(b) => (FP_MASK, b & FP_MASK),
            AbsFp::Zeros => (0xF, 0),
            // NonZero says *some* low bit is 1, never which one.
            AbsFp::NonZero | AbsFp::Bot | AbsFp::Top => (0, 0),
        };
        BitWord {
            known,
            value,
            width: FP_MANTISSA_BITS,
        }
    }

    /// Abstracts the FP-bus image of an *integer* operand — `cvtif`
    /// drives `Word::Fp(v as i64 as u64)` onto the FPAU, so the power
    /// model sees the sign-extended integer's low 52 bits.
    pub fn fp_from_int(v: AbsInt) -> Self {
        let (known, value) = match v {
            AbsInt::Const(c) => (FP_MASK, (c as i64 as u64) & FP_MASK),
            // 0 <= v < 2^k: bits k..52 of the zero-extension are 0.
            AbsInt::NonNegBits(k) => (FP_MASK & !((1u64 << k) - 1), 0),
            // v < 0: sign extension pins bits 31..52 to 1.
            AbsInt::Neg => {
                let ones = FP_MASK & !((1u64 << (INT_BITS - 1)) - 1);
                (ones, ones)
            }
            AbsInt::Bot | AbsInt::Top => (0, 0),
        };
        BitWord {
            known,
            value,
            width: FP_MANTISSA_BITS,
        }
    }

    /// Least upper bound: a bit stays known only where both sides know
    /// it with the same value.
    pub fn join(self, other: BitWord) -> BitWord {
        debug_assert_eq!(self.width, other.width, "joining across bus widths");
        let known = self.known & other.known & !(self.value ^ other.value);
        BitWord {
            known,
            value: self.value & known,
            width: self.width,
        }
    }

    /// Upper bound on the Hamming distance between any word this
    /// abstraction admits and any word `prev` admits: only bits known
    /// equal on both sides are guaranteed not to toggle.
    pub fn toggle_bound(self, prev: BitWord) -> u32 {
        debug_assert_eq!(self.width, prev.width, "bound across bus widths");
        let agreed = self.known & prev.known & !(self.value ^ prev.value) & self.mask();
        self.width - agreed.count_ones()
    }

    /// Whether the abstraction admits the concrete power-model bits
    /// `bits` (the soundness predicate the property tests exercise).
    pub fn admits(self, bits: u64) -> bool {
        (bits ^ self.value) & self.known & self.mask() == 0
    }
}

/// Which operand orders can reach an FU module's latches — the only
/// scheme property the static bound depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwapModel {
    /// Operands always arrive in program order (the naive machine: no
    /// rule, policy, or multiplier swap is active).
    Direct,
    /// A commutative operation's operands may arrive in either order
    /// (any scheme with the hardware swap enabled). Non-commutative
    /// operations stay direct — no swap mechanism touches them.
    Either,
}

/// The static switched-bit bound of one FU-occupying instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcBound {
    /// Static program counter (instruction index).
    pub pc: u32,
    /// Basic block owning the PC.
    pub block: usize,
    /// The FU class the instruction executes on.
    pub class: FuClass,
    /// The instruction's opcode, rendered.
    pub opcode: String,
    /// Upper bound on switched bits charged per executed operation,
    /// whichever module of the class the operation lands on.
    pub bits_per_op: u32,
    /// The statically predicted steering case, where both operand
    /// information bits are definite.
    pub case: Option<Case>,
}

/// Aggregated bound of one basic block (blocks with no FU operations
/// are omitted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockBound {
    /// Block id.
    pub block: usize,
    /// The block's label (`"bb{b}@{start}..{end}"`).
    pub label: String,
    /// FU-occupying instructions in the block.
    pub ops: usize,
    /// Upper bound on switched bits charged by one straight-line pass
    /// over the block (the per-PC bounds, summed).
    pub bits_per_pass: u64,
}

/// The static estimate of one program under one [`SwapModel`].
///
/// # Examples
///
/// ```
/// use fua_analysis::{estimate_transitions, SwapModel};
///
/// let w = fua_workloads::by_name("compress", 1).unwrap();
/// let est = estimate_transitions(&w.program, SwapModel::Either);
/// assert!(est.total_bits_per_pass() > 0);
/// // Every reachable FU op got a bound.
/// let (bounded, _) = est.coverage();
/// assert_eq!(bounded, est.pc_bounds().count());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionEstimate {
    model: SwapModel,
    bounds: Vec<Option<PcBound>>,
    blocks: Vec<BlockBound>,
}

impl TransitionEstimate {
    /// The swap model the estimate assumed.
    pub fn model(&self) -> SwapModel {
        self.model
    }

    /// The bound at instruction index `pc`, or `None` when the
    /// instruction occupies no FU or is unreachable.
    pub fn bound_of(&self, pc: usize) -> Option<&PcBound> {
        self.bounds.get(pc).and_then(|b| b.as_ref())
    }

    /// Every per-PC bound, in PC order.
    pub fn pc_bounds(&self) -> impl Iterator<Item = &PcBound> {
        self.bounds.iter().flatten()
    }

    /// Per-block aggregates, in block order (FU-free blocks omitted).
    pub fn blocks(&self) -> &[BlockBound] {
        &self.blocks
    }

    /// Per-class sums of the per-PC bounds, indexed by
    /// [`FuClass::index`] — the module-agnostic per-class breakdown.
    pub fn class_bits_per_pass(&self) -> [u64; 4] {
        let mut out = [0u64; 4];
        for b in self.pc_bounds() {
            out[b.class.index()] += b.bits_per_op as u64;
        }
        out
    }

    /// Sum of all per-PC bounds: the bound on one execution of every
    /// reachable FU instruction.
    pub fn total_bits_per_pass(&self) -> u64 {
        self.pc_bounds().map(|b| b.bits_per_op as u64).sum()
    }

    /// Counts of (bounded PCs, PCs with a definite static steering
    /// case).
    pub fn coverage(&self) -> (usize, usize) {
        let bounded = self.pc_bounds().count();
        let definite = self.pc_bounds().filter(|b| b.case.is_some()).count();
        (bounded, definite)
    }
}

/// Runs the information-bit fixpoint over `program` and derives, for
/// every reachable FU-occupying instruction, an upper bound on the
/// switched bits one execution of it can charge under `model`.
///
/// The bound is sound against the dynamic power model: for every PC,
/// `bits_per_op × (operations issued from the PC)` dominates the bits
/// the attribution profiler measures at that PC, for every scheme whose
/// swap behaviour `model` covers.
pub fn estimate_transitions(program: &Program, model: SwapModel) -> TransitionEstimate {
    let analysis = InfoBitAnalysis::run(program);
    let cfg = analysis.cfg();

    // Over-approximate the previous latch contents per class: join the
    // port words of every reachable op of the class, adding the swapped
    // order for commutative ops when the model permits it.
    let mut port_joins: [Option<(BitWord, BitWord)>; 4] = [None; 4];
    let mut contribute = |class: FuClass, w1: BitWord, w2: BitWord| {
        let slot = &mut port_joins[class.index()];
        *slot = Some(match *slot {
            None => (w1, w2),
            Some((j1, j2)) => (j1.join(w1), j2.join(w2)),
        });
    };
    for idx in 0..program.len() {
        let Some(p) = analysis.prediction(idx) else {
            continue;
        };
        contribute(p.class, p.op1_word, p.op2_word);
        if model == SwapModel::Either && program.inst(idx).op.commutative() {
            contribute(p.class, p.op2_word, p.op1_word);
        }
    }

    let mut bounds: Vec<Option<PcBound>> = vec![None; program.len()];
    for (idx, bound) in bounds.iter_mut().enumerate() {
        let Some(p) = analysis.prediction(idx) else {
            continue;
        };
        let (j1, j2) = port_joins[p.class.index()].expect("the op itself fed the join");
        let direct = p.op1_word.toggle_bound(j1) + p.op2_word.toggle_bound(j2);
        let bits_per_op = if model == SwapModel::Either && program.inst(idx).op.commutative() {
            // The op itself may be latched swapped; cover both orders.
            direct.max(p.op2_word.toggle_bound(j1) + p.op1_word.toggle_bound(j2))
        } else {
            direct
        };
        *bound = Some(PcBound {
            pc: idx as u32,
            block: cfg.block_of(idx),
            class: p.class,
            opcode: program.inst(idx).op.to_string(),
            bits_per_op,
            case: p.case(),
        });
    }

    let mut blocks = Vec::new();
    for (b, block) in cfg.blocks().iter().enumerate() {
        let mut ops = 0usize;
        let mut bits_per_pass = 0u64;
        for idx in block.insts() {
            if let Some(pb) = &bounds[idx] {
                ops += 1;
                bits_per_pass += pb.bits_per_op as u64;
            }
        }
        if ops > 0 {
            blocks.push(BlockBound {
                block: b,
                label: cfg.block_label(b),
                ops,
                bits_per_pass,
            });
        }
    }

    TransitionEstimate {
        model,
        bounds,
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::{FpReg, IntReg, ProgramBuilder};

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    fn f(i: u8) -> FpReg {
        FpReg::new(i)
    }

    #[test]
    fn bitword_join_is_commutative_and_sound_on_samples() {
        let samples = [
            BitWord::from_int(AbsInt::Const(5)),
            BitWord::from_int(AbsInt::Const(-1)),
            BitWord::from_int(AbsInt::NonNegBits(3)),
            BitWord::from_int(AbsInt::NonNegBits(0)),
            BitWord::from_int(AbsInt::Neg),
            BitWord::from_int(AbsInt::Top),
        ];
        let values: [u64; 6] = [0, 1, 5, 7, 0xFFFF_FFFF, 0x8000_0000];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(a.join(b), b.join(a));
                let j = a.join(b);
                for &v in &values {
                    if a.admits(v) || b.admits(v) {
                        assert!(j.admits(v), "{a:?} ⊔ {b:?} = {j:?} drops {v:#x}");
                    }
                }
            }
        }
    }

    #[test]
    fn toggle_bound_dominates_every_admitted_pair() {
        let a = BitWord::from_int(AbsInt::Const(5));
        let b = BitWord::from_int(AbsInt::NonNegBits(4));
        let bound = a.toggle_bound(b);
        for v in 0u64..16 {
            let ham = (5u64 ^ v).count_ones();
            assert!(ham <= bound, "ham(5, {v}) = {ham} > bound {bound}");
        }
        // Two identical constants cannot toggle at all.
        assert_eq!(a.toggle_bound(a), 0);
        // Fully unknown against anything costs the whole bus.
        assert_eq!(
            BitWord::unknown(INT_BITS).toggle_bound(a),
            INT_BITS,
            "unknown word bounds at full width"
        );
    }

    #[test]
    fn fp_words_cover_mantissa_bits_only() {
        let c = BitWord::from_fp(AbsFp::of(2.0));
        assert_eq!(c.width, FP_MANTISSA_BITS);
        assert!(c.admits(2.0f64.to_bits() & FP_MASK));
        assert_eq!(c.toggle_bound(c), 0);
        let z = BitWord::from_fp(AbsFp::Zeros);
        // Zeros pins only the low four bits.
        assert_eq!(c.toggle_bound(z), FP_MANTISSA_BITS - 4);
    }

    #[test]
    fn fp_from_int_models_sign_extension() {
        // A negative constant: bits 31..52 of the sign extension are 1.
        let neg = BitWord::fp_from_int(AbsInt::Neg);
        assert!(neg.admits((-5i64 as u64) & FP_MASK));
        assert!(!neg.admits(5));
        let c = BitWord::fp_from_int(AbsInt::Const(-20));
        assert!(c.admits((-20i64 as u64) & FP_MASK));
        let small = BitWord::fp_from_int(AbsInt::NonNegBits(4));
        assert!(small.admits(13));
        assert!(!small.admits(16));
    }

    #[test]
    fn straight_line_constants_get_tight_bounds() {
        // Two identical adds: after the join, both ports hold the same
        // constants, so nothing can toggle.
        let mut b = ProgramBuilder::new();
        b.li(r(1), 5);
        b.li(r(2), 3);
        b.add(r(3), r(1), r(2));
        b.add(r(4), r(1), r(2));
        b.halt();
        let p = b.build().unwrap();
        let est = estimate_transitions(&p, SwapModel::Direct);
        let add1 = est.bound_of(2).expect("add has an FU");
        let add2 = est.bound_of(3).expect("add has an FU");
        assert_eq!(add1.bits_per_op, add2.bits_per_op);
        // The lis present (0, imm) and the adds (5, 3); the join keeps
        // whatever bits agree. The bound is far below the 64-bit ceiling.
        assert!(add1.bits_per_op < 2 * INT_BITS);
        assert_eq!(add1.class, FuClass::IntAlu);
        assert!(add1.case.is_some());
    }

    #[test]
    fn either_model_is_at_least_as_loose_as_direct() {
        let w = fua_workloads::by_name("compress", 1).unwrap();
        let direct = estimate_transitions(&w.program, SwapModel::Direct);
        let either = estimate_transitions(&w.program, SwapModel::Either);
        for (d, e) in direct.pc_bounds().zip(either.pc_bounds()) {
            assert_eq!(d.pc, e.pc);
            assert!(
                e.bits_per_op >= d.bits_per_op,
                "pc {}: either {} < direct {}",
                d.pc,
                e.bits_per_op,
                d.bits_per_op
            );
        }
    }

    #[test]
    fn unreachable_and_fu_free_instructions_get_no_bound() {
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        b.j(end);
        b.add(r(1), r(1), r(1)); // dead
        b.bind(end);
        b.halt();
        let p = b.build().unwrap();
        let est = estimate_transitions(&p, SwapModel::Either);
        assert!(est.bound_of(0).is_none(), "j has no FU");
        assert!(est.bound_of(1).is_none(), "dead code is unbounded");
        assert_eq!(est.total_bits_per_pass(), 0);
        assert!(est.blocks().is_empty());
    }

    #[test]
    fn blocks_aggregate_their_pc_bounds() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.li(r(1), 3);
        b.bind(top);
        b.addi(r(1), r(1), -1);
        b.bgtz(r(1), top);
        b.halt();
        let p = b.build().unwrap();
        let est = estimate_transitions(&p, SwapModel::Either);
        let total: u64 = est.blocks().iter().map(|blk| blk.bits_per_pass).sum();
        assert_eq!(total, est.total_bits_per_pass());
        let ops: usize = est.blocks().iter().map(|blk| blk.ops).sum();
        assert_eq!(ops, est.pc_bounds().count());
        assert!(est.blocks()[0].label.starts_with("bb0@"));
    }

    #[test]
    fn fp_pipelines_bound_below_the_bus_ceiling() {
        let mut b = ProgramBuilder::new();
        b.fli(f(1), 2.0);
        b.fli(f(2), 0.5);
        b.fmul(f(3), f(1), f(2));
        b.fadd(f(4), f(3), f(1));
        b.halt();
        let p = b.build().unwrap();
        let est = estimate_transitions(&p, SwapModel::Either);
        let fmul = est.bound_of(2).expect("fmul has an FU");
        assert_eq!(fmul.class, FuClass::FpMul);
        // The multiplier class holds a single op with constant operands:
        // both orders of the same constants still leave the unknown
        // sides bounded by the mantissa width.
        assert!(fmul.bits_per_op <= 2 * FP_MANTISSA_BITS);
        let fadd = est.bound_of(3).expect("fadd has an FU");
        assert_eq!(fadd.class, FuClass::FpAlu);
    }
}
