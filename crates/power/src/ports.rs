//! Input-latch state of one functional-unit module.

use fua_isa::Word;
use fua_vm::FuOp;

/// The input latches of a single FU module.
///
/// Power-management latches keep the inputs stable while the module is
/// idle (the paper assumes transparent-latch guarding per Tiwari et al.),
/// so the cost of issuing an operation is exactly the Hamming distance
/// from the *previously latched* operands, regardless of how many cycles
/// ago they were latched. The very first operation on a module is charged
/// zero — latch power-up state is unknown and identical across all
/// steering policies, so it cancels in every comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModulePorts {
    prev: Option<(Word, Word)>,
}

impl ModulePorts {
    /// A module whose latches have not been written yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// The previously latched operand pair, if any.
    #[inline]
    pub fn prev(&self) -> Option<(Word, Word)> {
        self.prev
    }

    /// The switching cost of latching `(op1, op2)` now, without latching.
    #[inline]
    pub fn peek_cost(&self, op1: Word, op2: Word) -> u32 {
        pair_cost(self.prev, op1, op2)
    }

    /// Latches `(op1, op2)` and returns the switched-bit count charged.
    #[inline]
    pub fn latch(&mut self, op1: Word, op2: Word) -> u32 {
        let cost = self.peek_cost(op1, op2);
        self.prev = Some((op1, op2));
        cost
    }
}

/// Hamming cost of driving `(op1, op2)` onto ports that previously held
/// `prev` (0 if the ports were never driven).
#[inline]
pub fn pair_cost(prev: Option<(Word, Word)>, op1: Word, op2: Word) -> u32 {
    match prev {
        Some((p1, p2)) => p1.ham(op1) + p2.ham(op2),
        None => 0,
    }
}

/// The paper's Figure-2 cost: the cheapest way to place `op` on a module
/// whose ports hold `prev`, considering the swapped order when the
/// operation is commutative and `allow_swap` is set.
///
/// Returns `(cost, swapped)`.
///
/// # Examples
///
/// ```
/// use fua_isa::Word;
/// use fua_power::steering_cost;
/// use fua_vm::FuOp;
/// use fua_isa::FuClass;
///
/// let op = FuOp {
///     class: FuClass::IntAlu,
///     op1: Word::int(0),
///     op2: Word::int(-1),
///     commutative: true,
/// };
/// let prev = Some((Word::int(-1), Word::int(0)));
/// let (cost, swapped) = steering_cost(prev, &op, true);
/// assert_eq!(cost, 0);
/// assert!(swapped);
/// ```
#[inline]
pub fn steering_cost(prev: Option<(Word, Word)>, op: &FuOp, allow_swap: bool) -> (u32, bool) {
    let direct = pair_cost(prev, op.op1, op.op2);
    if allow_swap && op.commutative {
        let swapped = pair_cost(prev, op.op2, op.op1);
        if swapped < direct {
            return (swapped, true);
        }
    }
    (direct, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::FuClass;

    fn op(a: i32, b: i32, commutative: bool) -> FuOp {
        FuOp {
            class: FuClass::IntAlu,
            op1: Word::int(a),
            op2: Word::int(b),
            commutative,
        }
    }

    #[test]
    fn first_latch_is_free_then_costs_accumulate() {
        let mut m = ModulePorts::new();
        assert_eq!(m.latch(Word::int(0b1111), Word::int(0)), 0);
        assert_eq!(m.latch(Word::int(0b1010), Word::int(1)), 2 + 1);
        assert_eq!(m.prev(), Some((Word::int(0b1010), Word::int(1))));
    }

    #[test]
    fn peek_does_not_latch() {
        let mut m = ModulePorts::new();
        m.latch(Word::int(0), Word::int(0));
        let c1 = m.peek_cost(Word::int(3), Word::int(0));
        let c2 = m.peek_cost(Word::int(3), Word::int(0));
        assert_eq!(c1, c2);
        assert_eq!(c1, 2);
        assert_eq!(m.prev(), Some((Word::int(0), Word::int(0))));
    }

    #[test]
    fn swap_is_used_only_when_cheaper_and_legal() {
        let prev = Some((Word::int(-1), Word::int(0)));
        // Direct: ham(-1,0)+ham(0,-1) = 64; swapped: 0.
        let commutative = op(0, -1, true);
        assert_eq!(steering_cost(prev, &commutative, true), (0, true));
        // Swap disallowed by the caller:
        assert_eq!(steering_cost(prev, &commutative, false), (64, false));
        // Swap illegal for the op:
        let fixed = op(0, -1, false);
        assert_eq!(steering_cost(prev, &fixed, true), (64, false));
    }

    #[test]
    fn fp_costs_are_mantissa_only() {
        let mut m = ModulePorts::new();
        m.latch(Word::fp(1.5), Word::fp(0.0));
        // 3.0 has the same mantissa as 1.5.
        assert_eq!(m.peek_cost(Word::fp(3.0), Word::fp(0.0)), 0);
    }

    #[test]
    fn figure1_routing_example_energy() {
        // The paper's Figure 1: cycle-1 operands on three FUs, then
        // cycle-2 operands; the alternative routing consumes 57% less
        // energy than the default. Values from the figure:
        let c1 = [
            (Word::int(0x0A01), Word::int(0x0001)),
            (Word::int(0x7FFF), Word::int(0x0001)),
            (Word::int(0xFFF7u32 as i32), Word::int(0x7F00)),
        ];
        let c2 = [
            (Word::int(0x0A71), Word::int(0x0111)),
            (Word::int(0x0A01), Word::int(0x0001)),
            (Word::int(0x7F00), Word::int(0x0001)),
        ];
        // Default: cycle-2 op i goes to FU i.
        let default: u32 = (0..3)
            .map(|i| pair_cost(Some(c1[i]), c2[i].0, c2[i].1))
            .sum();
        // Alternative routing from the figure: op0->FU0, op1->FU0? No —
        // the figure routes (0A71,0111)->FU1's previous (0A01,0001) etc.
        // Best assignment (computed exhaustively in fua-steer tests) is
        // strictly cheaper; here we simply check a better routing exists.
        let alt: u32 = pair_cost(Some(c1[0]), c2[1].0, c2[1].1)
            + pair_cost(Some(c1[1]), c2[2].0, c2[2].1)
            + pair_cost(Some(c1[2]), c2[0].0, c2[0].1);
        assert!(alt < default, "alternative routing must be cheaper");
    }
}
