//! Per-functional-unit-type energy accounting.

use std::fmt;

use fua_isa::FuClass;
use fua_trace::{Json, ToJson};

/// Accumulates switched input bits and operation counts per FU class.
///
/// # Examples
///
/// ```
/// use fua_isa::FuClass;
/// use fua_power::EnergyLedger;
///
/// let mut ledger = EnergyLedger::new();
/// ledger.charge(FuClass::IntAlu, 12);
/// ledger.charge(FuClass::IntAlu, 8);
/// assert_eq!(ledger.switched_bits(FuClass::IntAlu), 20);
/// assert_eq!(ledger.ops(FuClass::IntAlu), 2);
/// assert_eq!(ledger.total_switched_bits(), 20);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyLedger {
    switched: [u64; 4],
    ops: [u64; 4],
}

impl EnergyLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one operation on `class` that switched `bits` input bits.
    #[inline]
    pub fn charge(&mut self, class: FuClass, bits: u32) {
        self.switched[class.index()] += bits as u64;
        self.ops[class.index()] += 1;
    }

    /// Total switched bits recorded for `class`.
    #[inline]
    pub fn switched_bits(&self, class: FuClass) -> u64 {
        self.switched[class.index()]
    }

    /// Number of operations recorded for `class`.
    #[inline]
    pub fn ops(&self, class: FuClass) -> u64 {
        self.ops[class.index()]
    }

    /// Switched bits summed over all classes.
    pub fn total_switched_bits(&self) -> u64 {
        self.switched.iter().sum()
    }

    /// Mean switched bits per operation for `class` (0 when idle).
    pub fn mean_bits_per_op(&self, class: FuClass) -> f64 {
        let n = self.ops(class);
        if n == 0 {
            0.0
        } else {
            self.switched_bits(class) as f64 / n as f64
        }
    }

    /// Fractional energy reduction of `self` relative to `baseline` for
    /// one FU class: `1 - self/baseline`. Returns 0 when the baseline
    /// recorded no switching.
    pub fn reduction_vs(&self, baseline: &EnergyLedger, class: FuClass) -> f64 {
        let base = baseline.switched_bits(class);
        if base == 0 {
            0.0
        } else {
            1.0 - self.switched_bits(class) as f64 / base as f64
        }
    }

    /// Merges another ledger into this one (used to aggregate workloads).
    pub fn merge(&mut self, other: &EnergyLedger) {
        for i in 0..4 {
            self.switched[i] += other.switched[i];
            self.ops[i] += other.ops[i];
        }
    }

    /// The delta accumulated since `snapshot` was taken (interval
    /// telemetry: snapshot the ledger at a window boundary, subtract at
    /// the next one). `snapshot` must be an earlier state of this
    /// ledger's history.
    ///
    /// # Panics
    ///
    /// Panics if any component of `snapshot` exceeds the corresponding
    /// component of `self` — that means `snapshot` is not an earlier
    /// state and the "delta" would be meaningless.
    ///
    /// # Examples
    ///
    /// ```
    /// use fua_isa::FuClass;
    /// use fua_power::EnergyLedger;
    ///
    /// let mut ledger = EnergyLedger::new();
    /// ledger.charge(FuClass::IntAlu, 10);
    /// let snap = ledger; // Copy
    /// ledger.charge(FuClass::IntAlu, 7);
    /// let delta = ledger.delta_since(&snap);
    /// assert_eq!(delta.switched_bits(FuClass::IntAlu), 7);
    /// assert_eq!(delta.ops(FuClass::IntAlu), 1);
    /// ```
    pub fn delta_since(&self, snapshot: &EnergyLedger) -> EnergyLedger {
        let mut delta = EnergyLedger::new();
        for i in 0..4 {
            delta.switched[i] = self.switched[i]
                .checked_sub(snapshot.switched[i])
                .expect("snapshot is not an earlier state of this ledger");
            delta.ops[i] = self.ops[i]
                .checked_sub(snapshot.ops[i])
                .expect("snapshot is not an earlier state of this ledger");
        }
        delta
    }

    /// Adds raw per-class totals, e.g. re-assembling a ledger from an
    /// externally-accumulated decomposition such as the windowed
    /// time-series (`fua-trace` cannot name this type, so its sinks
    /// carry `[u64; 4]` arrays indexed by [`FuClass::index`]).
    pub fn accumulate(&mut self, switched_bits: [u64; 4], ops: [u64; 4]) {
        for i in 0..4 {
            self.switched[i] += switched_bits[i];
            self.ops[i] += ops[i];
        }
    }

    /// Per-class switched-bit totals as a raw array indexed by
    /// [`FuClass::index`] (the same layout the trace-layer sinks use).
    pub fn switched_array(&self) -> [u64; 4] {
        self.switched
    }

    /// Per-class operation counts as a raw array indexed by
    /// [`FuClass::index`].
    pub fn ops_array(&self) -> [u64; 4] {
        self.ops
    }
}

impl ToJson for EnergyLedger {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = FuClass::ALL
            .iter()
            .map(|&class| {
                (
                    class.to_string(),
                    Json::obj([
                        ("ops", Json::UInt(self.ops(class))),
                        ("switched_bits", Json::UInt(self.switched_bits(class))),
                        ("bits_per_op", Json::Float(self.mean_bits_per_op(class))),
                    ]),
                )
            })
            .collect();
        fields.push((
            "total_switched_bits".to_string(),
            Json::UInt(self.total_switched_bits()),
        ));
        Json::Obj(fields)
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for class in FuClass::ALL {
            writeln!(
                f,
                "{class:6} ops={:10} switched_bits={:12} bits/op={:.2}",
                self.ops(class),
                self.switched_bits(class),
                self.mean_bits_per_op(class)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_is_relative_to_baseline() {
        let mut base = EnergyLedger::new();
        base.charge(FuClass::IntAlu, 100);
        let mut better = EnergyLedger::new();
        better.charge(FuClass::IntAlu, 80);
        assert!((better.reduction_vs(&base, FuClass::IntAlu) - 0.2).abs() < 1e-12);
        // Idle baseline yields 0, not a division by zero.
        assert_eq!(better.reduction_vs(&base, FuClass::FpAlu), 0.0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = EnergyLedger::new();
        a.charge(FuClass::FpAlu, 5);
        let mut b = EnergyLedger::new();
        b.charge(FuClass::FpAlu, 7);
        b.charge(FuClass::IntMul, 3);
        a.merge(&b);
        assert_eq!(a.switched_bits(FuClass::FpAlu), 12);
        assert_eq!(a.ops(FuClass::FpAlu), 2);
        assert_eq!(a.switched_bits(FuClass::IntMul), 3);
    }

    #[test]
    fn delta_since_subtracts_componentwise() {
        let mut ledger = EnergyLedger::new();
        ledger.charge(FuClass::IntAlu, 10);
        ledger.charge(FuClass::FpAlu, 4);
        let snap = ledger;
        ledger.charge(FuClass::IntAlu, 6);
        ledger.charge(FuClass::IntMul, 2);
        let delta = ledger.delta_since(&snap);
        assert_eq!(delta.switched_bits(FuClass::IntAlu), 6);
        assert_eq!(delta.ops(FuClass::IntAlu), 1);
        assert_eq!(delta.switched_bits(FuClass::IntMul), 2);
        assert_eq!(delta.switched_bits(FuClass::FpAlu), 0);
        assert_eq!(delta.ops(FuClass::FpAlu), 0);
        // Snapshot + delta reassembles the final ledger.
        let mut rebuilt = snap;
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, ledger);
    }

    #[test]
    #[should_panic(expected = "earlier state")]
    fn delta_since_rejects_a_later_snapshot() {
        let mut later = EnergyLedger::new();
        later.charge(FuClass::IntAlu, 5);
        EnergyLedger::new().delta_since(&later);
    }

    #[test]
    fn accumulate_reassembles_from_raw_arrays() {
        let mut direct = EnergyLedger::new();
        direct.charge(FuClass::IntAlu, 9);
        direct.charge(FuClass::IntAlu, 1);
        direct.charge(FuClass::FpMul, 3);
        let mut rebuilt = EnergyLedger::new();
        rebuilt.accumulate(direct.switched_array(), direct.ops_array());
        assert_eq!(rebuilt, direct);
        assert_eq!(rebuilt.switched_array(), [10, 0, 0, 3]);
        assert_eq!(rebuilt.ops_array(), [2, 0, 0, 1]);
    }

    #[test]
    fn an_empty_ledger_is_a_fixed_point_of_every_operation() {
        let empty = EnergyLedger::new();
        assert_eq!(empty.total_switched_bits(), 0);
        assert_eq!(empty.switched_array(), [0; 4]);
        assert_eq!(empty.ops_array(), [0; 4]);
        for class in FuClass::ALL {
            assert_eq!(empty.mean_bits_per_op(class), 0.0);
        }

        // A snapshot of an empty ledger is the ledger itself, and the
        // delta against it is empty again.
        let snap = empty;
        assert_eq!(snap, empty);
        assert_eq!(empty.delta_since(&snap), EnergyLedger::new());

        // Merging and accumulating zeros are no-ops.
        let mut merged = empty;
        merged.merge(&EnergyLedger::new());
        merged.accumulate([0; 4], [0; 4]);
        assert_eq!(merged, empty);
    }

    #[test]
    fn a_zero_bit_charge_still_counts_the_operation() {
        let mut ledger = EnergyLedger::new();
        ledger.charge(FuClass::IntAlu, 0);
        assert_eq!(ledger.ops(FuClass::IntAlu), 1);
        assert_eq!(ledger.switched_bits(FuClass::IntAlu), 0);
        assert_eq!(ledger.total_switched_bits(), 0);
        assert_eq!(ledger.mean_bits_per_op(FuClass::IntAlu), 0.0);
        // ...and the ledger is no longer equal to an empty one, so an
        // idle interval is distinguishable from a zero-switching one.
        assert_ne!(ledger, EnergyLedger::new());
    }

    #[test]
    fn a_single_charge_round_trips_through_snapshot_and_delta() {
        let empty = EnergyLedger::new();
        let mut ledger = empty;
        ledger.charge(FuClass::FpMul, 17);

        // delta since the empty snapshot is the whole single-op history.
        let delta = ledger.delta_since(&empty);
        assert_eq!(delta, ledger);
        assert_eq!(delta.ops(FuClass::FpMul), 1);
        assert_eq!(delta.switched_bits(FuClass::FpMul), 17);

        // delta since itself is empty, and accumulate rebuilds it.
        assert_eq!(ledger.delta_since(&ledger), empty);
        let mut rebuilt = EnergyLedger::new();
        rebuilt.accumulate(delta.switched_array(), delta.ops_array());
        assert_eq!(rebuilt, ledger);
    }

    #[test]
    fn display_lists_all_classes() {
        let s = EnergyLedger::new().to_string();
        for name in ["IALU", "IMUL", "FPAU", "FPMUL"] {
            assert!(s.contains(name));
        }
    }

    #[test]
    fn json_carries_per_class_and_total() {
        let mut ledger = EnergyLedger::new();
        ledger.charge(FuClass::IntAlu, 12);
        ledger.charge(FuClass::IntAlu, 8);
        ledger.charge(FuClass::IntMul, 5);
        let json = ledger.to_json();
        let Json::Obj(fields) = &json else {
            panic!("expected object");
        };
        assert_eq!(fields.last().unwrap().0, "total_switched_bits");
        assert_eq!(fields.last().unwrap().1, Json::UInt(25));
        let rendered = json.pretty();
        assert!(rendered.contains("\"switched_bits\": 20"));
        assert!(rendered.contains("\"bits_per_op\": 10.0"));
    }
}
