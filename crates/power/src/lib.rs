//! Dynamic-power models for functional units.
//!
//! The paper's energy model (Section 2):
//!
//! ```text
//! Power ≈ ½ · Vdd² · f · C_module · h_input
//! ```
//!
//! where `h_input` is the Hamming distance between a module's current and
//! previous input operands. Because `½·Vdd²·f·C` is a constant per module,
//! every comparison in the paper — and in this workspace — reduces to
//! counting *switched input bits*. [`ModulePorts`] tracks the input latches
//! of one FU module and charges that count on every issue; [`PowerParams`]
//! converts accumulated switched bits into joules/watts when physical
//! units are wanted for reporting.
//!
//! The paper has no power model for the Booth multiplier; [`booth`]
//! provides one (clearly an extension, see DESIGN.md) so the Table-3 swap
//! opportunity can be quantified.
//!
//! # Examples
//!
//! ```
//! use fua_isa::Word;
//! use fua_power::ModulePorts;
//!
//! let mut ports = ModulePorts::new();
//! assert_eq!(ports.latch(Word::int(0x0A01), Word::int(0x0001)), 0); // first latch is free
//! // 0x0A01 -> 0x0A71 flips 3 bits; 0x0001 -> 0x0111 flips 2.
//! assert_eq!(ports.latch(Word::int(0x0A71), Word::int(0x0111)), 5);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod booth;
mod ledger;
mod ports;

pub use ledger::EnergyLedger;
pub use ports::{pair_cost, steering_cost, ModulePorts};

/// Electrical parameters that scale switched-bit counts into physical
/// energy, for reports that want joules instead of bit counts.
///
/// # Examples
///
/// ```
/// use fua_power::PowerParams;
///
/// let p = PowerParams::default();
/// let energy = p.energy_joules(1_000_000);
/// assert!(energy > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Clock frequency in hertz.
    pub freq: f64,
    /// Effective switched capacitance per toggled input bit, in farads.
    /// This lumps `C_module / width` into a single per-bit constant.
    pub cap_per_bit: f64,
}

impl PowerParams {
    /// Energy in joules for a total count of switched input bits:
    /// `½ · Vdd² · C_bit · switched_bits`.
    pub fn energy_joules(&self, switched_bits: u64) -> f64 {
        0.5 * self.vdd * self.vdd * self.cap_per_bit * switched_bits as f64
    }

    /// Average power in watts given switched bits and elapsed cycles.
    ///
    /// Returns 0 for zero cycles.
    pub fn average_watts(&self, switched_bits: u64, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        self.energy_joules(switched_bits) * self.freq / cycles as f64
    }
}

impl Default for PowerParams {
    /// A circa-2003 design point: 1.5 V, 1 GHz, 50 fF per input bit.
    fn default() -> Self {
        PowerParams {
            vdd: 1.5,
            freq: 1.0e9,
            cap_per_bit: 50.0e-15,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_linearly_with_switching() {
        let p = PowerParams::default();
        let one = p.energy_joules(1);
        assert!((p.energy_joules(10) - 10.0 * one).abs() < 1e-24);
    }

    #[test]
    fn average_power_handles_zero_cycles() {
        let p = PowerParams::default();
        assert_eq!(p.average_watts(100, 0), 0.0);
        assert!(p.average_watts(100, 10) > 0.0);
    }
}
