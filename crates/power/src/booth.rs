//! A radix-4 Booth multiplier activity model.
//!
//! The paper observes (citing Lee et al.) that a Booth multiplier's power
//! depends on the switching activity of its operands *and on the number of
//! 1s in the second operand*, because the recoded second operand decides
//! how many non-zero partial products must be generated and summed. The
//! paper stops there — "we do not have a simple high-level power model for
//! the Booth multiplier" — and only reports swap opportunities (Table 3).
//!
//! This module supplies the missing model so the workspace can *quantify*
//! those opportunities; EXPERIMENTS.md flags every number derived from it
//! as an extension. The model:
//!
//! ```text
//! E(mul) = W_PP · nonzero_booth_digits(OP2) · width(OP1)
//!        + W_SW · Ham(inputs, previous inputs)
//! ```
//!
//! Non-zero radix-4 Booth digits are a monotone proxy for the number of 1s
//! in OP2 (a run of 1s recodes into just two non-zero digits, sparse 1s
//! recode into one digit each), which is exactly the effect the paper's
//! swap rule exploits.

use fua_isa::Word;

/// Weight of one non-zero partial-product row (switched bits per operand
/// bit of width), calibrated so a dense 32×32 multiply costs on the order
/// of the array's width².
pub const DEFAULT_PP_WEIGHT: f64 = 0.5;

/// Weight of one switched input bit.
pub const DEFAULT_SW_WEIGHT: f64 = 1.0;

/// Counts non-zero radix-4 Booth digits of a two's-complement value of the
/// given bit `width` (digits examine overlapping triplets
/// `b[2i+1] b[2i] b[2i-1]`).
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 64.
///
/// # Examples
///
/// ```
/// use fua_power::booth::nonzero_booth_digits;
///
/// assert_eq!(nonzero_booth_digits(0, 32), 0);
/// // A solid run of 1s recodes into two non-zero digits (+1 at the
/// // bottom-as -1, one +1 above the run).
/// assert_eq!(nonzero_booth_digits(0b0111_1111, 32), 2);
/// // Sparse, isolated 1s cost one digit each.
/// assert_eq!(nonzero_booth_digits(0b0101_0101, 32), 4);
/// ```
pub fn nonzero_booth_digits(value: u64, width: u32) -> u32 {
    assert!((1..=64).contains(&width), "width out of range: {width}");
    // Sign-extend to 64 bits so the top digit sees the true sign.
    let v = if width < 64 {
        let shift = 64 - width;
        (((value << shift) as i64) >> shift) as u64
    } else {
        value
    };
    let digits = width.div_ceil(2);
    let mut count = 0;
    let mut prev_bit = 0u64; // b[-1] = 0
    for i in 0..digits {
        let b0 = (v >> (2 * i)) & 1;
        let b1 = if 2 * i + 1 < 64 {
            (v >> (2 * i + 1)) & 1
        } else {
            (v >> 63) & 1
        };
        // digit = -2*b1 + b0 + prev_bit; zero iff all three bits equal.
        let digit = b0 as i64 + prev_bit as i64 - 2 * b1 as i64;
        if digit != 0 {
            count += 1;
        }
        prev_bit = b1;
    }
    count
}

/// Parameters of the Booth activity model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoothModel {
    /// Energy weight per non-zero partial product per bit of OP1 width.
    pub pp_weight: f64,
    /// Energy weight per switched input bit.
    pub sw_weight: f64,
}

impl Default for BoothModel {
    fn default() -> Self {
        BoothModel {
            pp_weight: DEFAULT_PP_WEIGHT,
            sw_weight: DEFAULT_SW_WEIGHT,
        }
    }
}

impl BoothModel {
    /// Creates a model with the default weights.
    pub fn new() -> Self {
        Self::default()
    }

    /// Energy (in weighted switched-bit units) of a multiply whose input
    /// ports previously held `prev`.
    ///
    /// For floating-point operands the recoded value is the 53-bit
    /// significand (hidden bit included); for integers, all 32 bits.
    pub fn multiply_energy(&self, prev: Option<(Word, Word)>, op1: Word, op2: Word) -> f64 {
        let (recoded, width) = significand(op2);
        let pp = nonzero_booth_digits(recoded, width) as f64;
        let ham = fua_power_pair_cost(prev, op1, op2) as f64;
        self.pp_weight * pp * op1.power_width() as f64 + self.sw_weight * ham
    }

    /// Whether swapping the operands lowers the model's energy — the
    /// paper's rule "ensure the second operand is the one with fewer ones"
    /// expressed through the recoding.
    pub fn swap_helps(&self, op1: Word, op2: Word) -> bool {
        let (r2, w2) = significand(op2);
        let (r1, w1) = significand(op1);
        nonzero_booth_digits(r1, w1) < nonzero_booth_digits(r2, w2)
    }
}

// Local alias so this module does not depend on the ports module's glob.
use crate::pair_cost as fua_power_pair_cost;

/// The bits a multiplier array actually recodes: the full word for
/// integers, the 53-bit significand (hidden bit restored) for doubles.
/// Zero, subnormals and other hidden-bit-less encodings recode their raw
/// mantissa.
pub fn significand(w: Word) -> (u64, u32) {
    match w {
        Word::Int(v) => (v as u64, 32),
        Word::Fp(bits) => {
            let mantissa = bits & ((1u64 << 52) - 1);
            let exponent = (bits >> 52) & 0x7FF;
            if exponent == 0 {
                (mantissa, 53)
            } else {
                (mantissa | (1u64 << 52), 53)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_has_no_partial_products() {
        assert_eq!(nonzero_booth_digits(0, 32), 0);
        assert_eq!(nonzero_booth_digits(0, 64), 0);
    }

    #[test]
    fn minus_one_recodes_to_a_single_digit() {
        // -1 = ...111: first digit sees (1,1,0) = -1, all later digits see
        // (1,1,1) = 0.
        assert_eq!(nonzero_booth_digits(-1i64 as u64, 32), 1);
        assert_eq!(nonzero_booth_digits(-1i64 as u64, 64), 1);
    }

    #[test]
    fn dense_values_cost_more_than_sparse_runs() {
        let run = 0x0000_FFFFu64; // one run of 16 ones
        let sparse = 0x5555_5555u64; // 16 isolated ones
        assert!(nonzero_booth_digits(run, 32) < nonzero_booth_digits(sparse, 32));
    }

    #[test]
    fn powers_of_two_recode_to_at_most_two_digits() {
        // Even bit positions align with a digit boundary and need one
        // digit; odd positions straddle it (8 = 16 - 8) and need two.
        for k in [0u32, 2, 10, 30] {
            assert_eq!(nonzero_booth_digits(1u64 << k, 32), 1, "2^{k}");
        }
        for k in [1u32, 3, 11, 29] {
            assert_eq!(nonzero_booth_digits(1u64 << k, 32), 2, "2^{k}");
        }
    }

    #[test]
    fn fp_significand_restores_hidden_bit() {
        let (sig, w) = significand(Word::fp(1.0));
        assert_eq!(w, 53);
        assert_eq!(sig, 1u64 << 52);
        let (zero_sig, _) = significand(Word::fp(0.0));
        assert_eq!(zero_sig, 0);
    }

    #[test]
    fn swap_prefers_sparse_second_operand() {
        let m = BoothModel::new();
        let sparse = Word::int(8); // one booth digit
        let dense = Word::int(0x5555_5555u32 as i32);
        assert!(m.swap_helps(sparse, dense));
        assert!(!m.swap_helps(dense, sparse));
    }

    #[test]
    fn multiply_energy_increases_with_dense_op2() {
        let m = BoothModel::new();
        let e_sparse = m.multiply_energy(None, Word::int(1234), Word::int(16));
        let e_dense = m.multiply_energy(None, Word::int(1234), Word::int(0x5555_5555u32 as i32));
        assert!(e_dense > e_sparse);
    }
}
