//! Programs and the builder used to assemble them.

use std::error::Error;
use std::fmt;

use crate::{FpReg, Inst, IntReg, Opcode, Src};

/// A forward-referencable branch target handed out by
/// [`ProgramBuilder::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Error returned by [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildProgramError {
    /// The program contains no instructions.
    Empty,
    /// The program contains no `halt`, so execution would fall off the end.
    NoHalt,
    /// A label was created but never bound to a position.
    UnboundLabel(usize),
}

impl fmt::Display for BuildProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildProgramError::Empty => f.write_str("program has no instructions"),
            BuildProgramError::NoHalt => f.write_str("program has no halt instruction"),
            BuildProgramError::UnboundLabel(i) => write!(f, "label {i} was never bound"),
        }
    }
}

impl Error for BuildProgramError {}

/// A validated, executable program: instructions plus an initial data
/// memory image.
///
/// Programs are assembled with [`ProgramBuilder`]:
///
/// ```
/// use fua_isa::{IntReg, ProgramBuilder};
///
/// # fn main() -> Result<(), fua_isa::BuildProgramError> {
/// let r1 = IntReg::new(1);
/// let mut b = ProgramBuilder::new();
/// let loop_top = b.new_label();
/// b.li(r1, 10);
/// b.bind(loop_top);
/// b.addi(r1, r1, -1);
/// b.bgtz(r1, loop_top);
/// b.halt();
/// let program = b.build()?;
/// assert_eq!(program.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    insts: Vec<Inst>,
    data: Vec<u8>,
}

impl Program {
    /// The instructions, in address order.
    #[inline]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of static instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty (never true for built programs).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The initial data-memory image.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The instruction at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn inst(&self, index: usize) -> &Inst {
        &self.insts[index]
    }

    /// Replaces the instruction at `index` — used by the compiler swap
    /// pass, which rewrites operand orders in place.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn replace_inst(&mut self, index: usize, inst: Inst) {
        self.insts[index] = inst;
    }

    /// A disassembly listing, one instruction per line.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            out.push_str(&format!("{i:5}: {inst}\n"));
        }
        out
    }
}

/// Assembles a [`Program`], resolving labels and validating the result.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    data: Vec<u8>,
    // For each label: its bound instruction index, once known.
    labels: Vec<Option<usize>>,
    // (instruction index, label) pairs awaiting patching.
    patches: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the position of the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.insts.len());
    }

    /// Reserves `bytes` of zero-initialised data memory and returns the
    /// byte address of the start of the block (8-byte aligned).
    pub fn alloc_data(&mut self, bytes: usize) -> i32 {
        while !self.data.len().is_multiple_of(8) {
            self.data.push(0);
        }
        let addr = self.data.len() as i32;
        self.data.resize(self.data.len() + bytes, 0);
        addr
    }

    /// Reserves a block initialised with the given 32-bit words and returns
    /// its byte address.
    pub fn data_words(&mut self, words: &[i32]) -> i32 {
        let addr = self.alloc_data(words.len() * 4);
        for (i, w) in words.iter().enumerate() {
            let off = addr as usize + i * 4;
            self.data[off..off + 4].copy_from_slice(&w.to_le_bytes());
        }
        addr
    }

    /// Reserves a block initialised with the given doubles and returns its
    /// byte address.
    pub fn data_doubles(&mut self, values: &[f64]) -> i32 {
        let addr = self.alloc_data(values.len() * 8);
        for (i, v) in values.iter().enumerate() {
            let off = addr as usize + i * 8;
            self.data[off..off + 8].copy_from_slice(&v.to_bits().to_le_bytes());
        }
        addr
    }

    fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    fn push_branch(&mut self, inst: Inst, target: Label) {
        self.patches.push((self.insts.len(), target));
        self.insts.push(inst);
    }

    /// Emits a raw instruction; prefer the typed helpers below.
    pub fn raw(&mut self, inst: Inst) {
        self.push(inst);
    }

    // --- integer ALU, three-register form ---

    /// Emits `op rd, rs, rt` for an integer ALU or multiplier opcode.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not an integer register-register opcode.
    pub fn alu(&mut self, op: Opcode, rd: IntReg, rs: IntReg, rt: IntReg) {
        use crate::FuClass;
        assert!(
            matches!(op.fu_class(), Some(FuClass::IntAlu | FuClass::IntMul)) && !op.is_mem(),
            "{op} is not an integer ALU/MUL opcode"
        );
        self.push(Inst::new(op, rs.into(), rt.into()).with_dst(rd));
    }

    /// Emits `op rd, rs, imm` (immediate second operand).
    ///
    /// # Panics
    ///
    /// Panics as for [`ProgramBuilder::alu`].
    pub fn alui(&mut self, op: Opcode, rd: IntReg, rs: IntReg, imm: i32) {
        use crate::FuClass;
        assert!(
            matches!(op.fu_class(), Some(FuClass::IntAlu | FuClass::IntMul)) && !op.is_mem(),
            "{op} is not an integer ALU/MUL opcode"
        );
        self.push(Inst::new(op, rs.into(), Src::Imm(imm)).with_dst(rd));
    }

    /// `add rd, rs, rt`.
    pub fn add(&mut self, rd: IntReg, rs: IntReg, rt: IntReg) {
        self.alu(Opcode::Add, rd, rs, rt);
    }

    /// `add rd, rs, imm`.
    pub fn addi(&mut self, rd: IntReg, rs: IntReg, imm: i32) {
        self.alui(Opcode::Add, rd, rs, imm);
    }

    /// `sub rd, rs, rt`.
    pub fn sub(&mut self, rd: IntReg, rs: IntReg, rt: IntReg) {
        self.alu(Opcode::Sub, rd, rs, rt);
    }

    /// `and rd, rs, rt`.
    pub fn and(&mut self, rd: IntReg, rs: IntReg, rt: IntReg) {
        self.alu(Opcode::And, rd, rs, rt);
    }

    /// `and rd, rs, imm`.
    pub fn andi(&mut self, rd: IntReg, rs: IntReg, imm: i32) {
        self.alui(Opcode::And, rd, rs, imm);
    }

    /// `or rd, rs, rt`.
    pub fn or(&mut self, rd: IntReg, rs: IntReg, rt: IntReg) {
        self.alu(Opcode::Or, rd, rs, rt);
    }

    /// `xor rd, rs, rt`.
    pub fn xor(&mut self, rd: IntReg, rs: IntReg, rt: IntReg) {
        self.alu(Opcode::Xor, rd, rs, rt);
    }

    /// `xor rd, rs, imm`.
    pub fn xori(&mut self, rd: IntReg, rs: IntReg, imm: i32) {
        self.alui(Opcode::Xor, rd, rs, imm);
    }

    /// `sll rd, rs, imm` (shift left by constant).
    pub fn slli(&mut self, rd: IntReg, rs: IntReg, imm: i32) {
        self.alui(Opcode::Sll, rd, rs, imm);
    }

    /// `srl rd, rs, imm`.
    pub fn srli(&mut self, rd: IntReg, rs: IntReg, imm: i32) {
        self.alui(Opcode::Srl, rd, rs, imm);
    }

    /// `sra rd, rs, imm`.
    pub fn srai(&mut self, rd: IntReg, rs: IntReg, imm: i32) {
        self.alui(Opcode::Sra, rd, rs, imm);
    }

    /// `slt rd, rs, rt`.
    pub fn slt(&mut self, rd: IntReg, rs: IntReg, rt: IntReg) {
        self.alu(Opcode::Slt, rd, rs, rt);
    }

    /// `sgt rd, rs, rt`.
    pub fn sgt(&mut self, rd: IntReg, rs: IntReg, rt: IntReg) {
        self.alu(Opcode::Sgt, rd, rs, rt);
    }

    /// `slt rd, rs, imm`.
    pub fn slti(&mut self, rd: IntReg, rs: IntReg, imm: i32) {
        self.alui(Opcode::Slt, rd, rs, imm);
    }

    /// `seq rd, rs, rt`.
    pub fn seq(&mut self, rd: IntReg, rs: IntReg, rt: IntReg) {
        self.alu(Opcode::Seq, rd, rs, rt);
    }

    /// `li rd, imm`: the ALU sees OP1 = 0, OP2 = imm.
    pub fn li(&mut self, rd: IntReg, imm: i32) {
        self.push(Inst::new(Opcode::Li, Src::Imm(0), Src::Imm(imm)).with_dst(rd));
    }

    /// `mul rd, rs, rt`.
    pub fn mul(&mut self, rd: IntReg, rs: IntReg, rt: IntReg) {
        self.alu(Opcode::Mul, rd, rs, rt);
    }

    /// `mul rd, rs, imm`.
    pub fn muli(&mut self, rd: IntReg, rs: IntReg, imm: i32) {
        self.alui(Opcode::Mul, rd, rs, imm);
    }

    /// `div rd, rs, rt`.
    pub fn div(&mut self, rd: IntReg, rs: IntReg, rt: IntReg) {
        self.alu(Opcode::Div, rd, rs, rt);
    }

    /// `rem rd, rs, imm`.
    pub fn remi(&mut self, rd: IntReg, rs: IntReg, imm: i32) {
        self.alui(Opcode::Rem, rd, rs, imm);
    }

    // --- floating point ---

    /// Emits `op fd, fs, ft` for a binary FP opcode.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a binary FP opcode writing an FP register.
    pub fn fpu(&mut self, op: Opcode, fd: FpReg, fs: FpReg, ft: FpReg) {
        use Opcode::*;
        assert!(
            matches!(op, FAdd | FSub | FMul | FDiv),
            "{op} is not a binary fp opcode"
        );
        self.push(Inst::new(op, fs.into(), ft.into()).with_dst(fd));
    }

    /// `fadd fd, fs, ft`.
    pub fn fadd(&mut self, fd: FpReg, fs: FpReg, ft: FpReg) {
        self.fpu(Opcode::FAdd, fd, fs, ft);
    }

    /// `fsub fd, fs, ft`.
    pub fn fsub(&mut self, fd: FpReg, fs: FpReg, ft: FpReg) {
        self.fpu(Opcode::FSub, fd, fs, ft);
    }

    /// `fmul fd, fs, ft`.
    pub fn fmul(&mut self, fd: FpReg, fs: FpReg, ft: FpReg) {
        self.fpu(Opcode::FMul, fd, fs, ft);
    }

    /// `fdiv fd, fs, ft`.
    pub fn fdiv(&mut self, fd: FpReg, fs: FpReg, ft: FpReg) {
        self.fpu(Opcode::FDiv, fd, fs, ft);
    }

    /// FP compare into an integer register, e.g. `fcmplt rd, fs, ft`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not an FP compare opcode.
    pub fn fcmp(&mut self, op: Opcode, rd: IntReg, fs: FpReg, ft: FpReg) {
        use Opcode::*;
        assert!(
            matches!(op, FCmpLt | FCmpLe | FCmpGt | FCmpGe | FCmpEq | FCmpNe),
            "{op} is not an fp compare"
        );
        self.push(Inst::new(op, fs.into(), ft.into()).with_dst(rd));
    }

    /// `cvtif fd, rs` (integer to double).
    pub fn cvtif(&mut self, fd: FpReg, rs: IntReg) {
        self.push(Inst::new(Opcode::CvtIf, rs.into(), Src::None).with_dst(fd));
    }

    /// `cvtfi rd, fs` (double to integer, truncating).
    pub fn cvtfi(&mut self, rd: IntReg, fs: FpReg) {
        self.push(Inst::new(Opcode::CvtFi, fs.into(), Src::None).with_dst(rd));
    }

    /// `fneg fd, fs`.
    pub fn fneg(&mut self, fd: FpReg, fs: FpReg) {
        self.push(Inst::new(Opcode::FNeg, fs.into(), Src::None).with_dst(fd));
    }

    /// `fabs fd, fs`.
    pub fn fabs(&mut self, fd: FpReg, fs: FpReg) {
        self.push(Inst::new(Opcode::FAbs, fs.into(), Src::None).with_dst(fd));
    }

    /// `fmov fd, fs`.
    pub fn fmov(&mut self, fd: FpReg, fs: FpReg) {
        self.push(Inst::new(Opcode::FMov, fs.into(), Src::None).with_dst(fd));
    }

    /// `fli fd, value` (decode-level double constant).
    pub fn fli(&mut self, fd: FpReg, value: f64) {
        self.push(Inst::new(Opcode::FLi, Src::fimm(value), Src::None).with_dst(fd));
    }

    // --- memory ---

    /// `lw rd, offset(base)`.
    pub fn lw(&mut self, rd: IntReg, base: IntReg, offset: i32) {
        self.push(
            Inst::new(Opcode::Lw, base.into(), Src::None)
                .with_dst(rd)
                .with_imm(offset),
        );
    }

    /// `sw rs, offset(base)`.
    pub fn sw(&mut self, rs: IntReg, base: IntReg, offset: i32) {
        self.push(Inst::new(Opcode::Sw, rs.into(), base.into()).with_imm(offset));
    }

    /// `lf fd, offset(base)`.
    pub fn lf(&mut self, fd: FpReg, base: IntReg, offset: i32) {
        self.push(
            Inst::new(Opcode::Lf, base.into(), Src::None)
                .with_dst(fd)
                .with_imm(offset),
        );
    }

    /// `sf fs, offset(base)`.
    pub fn sf(&mut self, fs: FpReg, base: IntReg, offset: i32) {
        self.push(Inst::new(Opcode::Sf, fs.into(), base.into()).with_imm(offset));
    }

    // --- control ---

    /// `beq rs, rt, target`.
    pub fn beq(&mut self, rs: IntReg, rt: IntReg, target: Label) {
        self.push_branch(Inst::new(Opcode::Beq, rs.into(), rt.into()), target);
    }

    /// `bne rs, rt, target`.
    pub fn bne(&mut self, rs: IntReg, rt: IntReg, target: Label) {
        self.push_branch(Inst::new(Opcode::Bne, rs.into(), rt.into()), target);
    }

    /// `blez rs, target`.
    pub fn blez(&mut self, rs: IntReg, target: Label) {
        self.push_branch(Inst::new(Opcode::Blez, rs.into(), Src::None), target);
    }

    /// `bgtz rs, target`.
    pub fn bgtz(&mut self, rs: IntReg, target: Label) {
        self.push_branch(Inst::new(Opcode::Bgtz, rs.into(), Src::None), target);
    }

    /// `j target`.
    pub fn j(&mut self, target: Label) {
        self.push_branch(Inst::new(Opcode::J, Src::None, Src::None), target);
    }

    /// `halt`.
    pub fn halt(&mut self) {
        self.push(Inst::new(Opcode::Halt, Src::None, Src::None));
    }

    /// Resolves labels and validates the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildProgramError`] when the program is empty, lacks a
    /// `halt`, or references an unbound label.
    pub fn build(mut self) -> Result<Program, BuildProgramError> {
        if self.insts.is_empty() {
            return Err(BuildProgramError::Empty);
        }
        if !self.insts.iter().any(|i| i.op == Opcode::Halt) {
            return Err(BuildProgramError::NoHalt);
        }
        for (inst_idx, label) in &self.patches {
            let target = self.labels[label.0].ok_or(BuildProgramError::UnboundLabel(label.0))?;
            self.insts[*inst_idx].imm = target as i32;
        }
        Ok(Program {
            insts: self.insts,
            data: self.data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IntReg;

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    #[test]
    fn builds_a_loop_with_forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        let done = b.new_label();
        b.li(r(1), 3);
        b.bind(top);
        b.blez(r(1), done);
        b.addi(r(1), r(1), -1);
        b.j(top);
        b.bind(done);
        b.halt();
        let p = b.build().expect("valid program");
        assert_eq!(p.inst(1).imm, 4); // blez targets halt
        assert_eq!(p.inst(3).imm, 1); // j targets loop top
    }

    #[test]
    fn empty_program_is_rejected() {
        assert_eq!(ProgramBuilder::new().build(), Err(BuildProgramError::Empty));
    }

    #[test]
    fn missing_halt_is_rejected() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 1);
        assert_eq!(b.build(), Err(BuildProgramError::NoHalt));
    }

    #[test]
    fn unbound_label_is_rejected() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.j(l);
        b.halt();
        assert_eq!(b.build(), Err(BuildProgramError::UnboundLabel(0)));
    }

    #[test]
    fn data_blocks_are_aligned_and_initialised() {
        let mut b = ProgramBuilder::new();
        let words = b.data_words(&[1, -1]);
        let doubles = b.data_doubles(&[2.5]);
        b.halt();
        let p = b.build().expect("valid program");
        assert_eq!(words, 0);
        assert_eq!(doubles % 8, 0);
        assert_eq!(&p.data()[0..4], &1i32.to_le_bytes());
        assert_eq!(
            &p.data()[doubles as usize..doubles as usize + 8],
            &2.5f64.to_bits().to_le_bytes()
        );
    }

    #[test]
    #[should_panic]
    fn alu_rejects_fp_opcode() {
        let mut b = ProgramBuilder::new();
        b.alu(Opcode::FAdd, r(1), r(2), r(3));
    }

    #[test]
    #[should_panic]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }
}
