//! Functional-unit classes.

use std::fmt;

/// The pool of functional units that executes an instruction.
///
/// The modelled machine mirrors the paper's SimpleScalar default
/// configuration: 4 integer ALUs, 1 integer multiplier/divider, 4
/// floating-point adder/subtractor units (FPAUs, which also handle
/// conversions and comparisons), and 1 floating-point multiplier/divider.
///
/// # Examples
///
/// ```
/// use fua_isa::FuClass;
///
/// assert!(FuClass::IntAlu.is_duplicated());
/// assert!(!FuClass::IntMul.is_duplicated());
/// assert_eq!(FuClass::FpAlu.default_module_count(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuClass {
    /// Integer arithmetic-logic unit (adds, logic, shifts, compares,
    /// effective-address computation).
    IntAlu,
    /// Integer multiplier/divider.
    IntMul,
    /// Floating-point adder/subtractor unit (also conversions, compares).
    FpAlu,
    /// Floating-point multiplier/divider.
    FpMul,
}

impl FuClass {
    /// All classes in display order.
    pub const ALL: [FuClass; 4] = [
        FuClass::IntAlu,
        FuClass::IntMul,
        FuClass::FpAlu,
        FuClass::FpMul,
    ];

    /// Module count in the paper's default machine (4/1/4/1).
    #[inline]
    pub fn default_module_count(self) -> usize {
        match self {
            FuClass::IntAlu | FuClass::FpAlu => 4,
            FuClass::IntMul | FuClass::FpMul => 1,
        }
    }

    /// Whether the default machine duplicates this unit, which is the
    /// precondition for power-aware steering (multipliers instead use
    /// operand swapping).
    #[inline]
    pub fn is_duplicated(self) -> bool {
        self.default_module_count() > 1
    }

    /// Whether operands of this class are floating-point words.
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, FuClass::FpAlu | FuClass::FpMul)
    }

    /// Stable index for per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::IntAlu => "IALU",
            FuClass::IntMul => "IMUL",
            FuClass::FpAlu => "FPAU",
            FuClass::FpMul => "FPMUL",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_counts_match_paper_machine() {
        assert_eq!(FuClass::IntAlu.default_module_count(), 4);
        assert_eq!(FuClass::IntMul.default_module_count(), 1);
        assert_eq!(FuClass::FpAlu.default_module_count(), 4);
        assert_eq!(FuClass::FpMul.default_module_count(), 1);
    }

    #[test]
    fn indices_are_dense() {
        for (i, c) in FuClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(FuClass::IntAlu.to_string(), "IALU");
        assert_eq!(FuClass::FpAlu.to_string(), "FPAU");
    }
}
