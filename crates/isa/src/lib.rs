//! Instruction-set architecture for the functional-unit-assignment study.
//!
//! This crate defines the MIPS-like ISA that every other crate in the
//! workspace builds on: 32 × 32-bit integer registers, 32 × 64-bit IEEE-754
//! floating-point registers, a small RISC opcode set with explicit
//! commutativity metadata, and the paper's core notions:
//!
//! * [`Word`] — a runtime operand value (32-bit integer or 64-bit float);
//! * information bits ([`Word::info_bit`]) — the single-bit operand summary
//!   used by the steering hardware (sign bit for integers, OR of the low
//!   four mantissa bits for floats);
//! * [`Case`] — the 2-bit classification of an instruction formed by
//!   concatenating the information bits of its two operands;
//! * [`FuClass`] — which pool of functional units executes an opcode.
//!
//! # Examples
//!
//! ```
//! use fua_isa::{Word, Case};
//!
//! let a = Word::int(20);            // 0x00000014: sign bit 0
//! let b = Word::int(-20);           // 0xFFFFFFEC: sign bit 1
//! assert!(!a.info_bit());
//! assert!(b.info_bit());
//! assert_eq!(Case::from_info_bits(a.info_bit(), b.info_bit()), Case::C01);
//!
//! // 7.0 has a two-bit mantissa, so its low four mantissa bits are zero.
//! let f = Word::fp(7.0);
//! assert!(!f.info_bit());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod case;
mod fu;
mod inst;
mod opcode;
mod program;
mod reg;
mod word;

pub use case::Case;
pub use fu::FuClass;
pub use inst::{Inst, Src};
pub use opcode::Opcode;
pub use program::{BuildProgramError, Label, Program, ProgramBuilder};
pub use reg::{FpReg, IntReg, Reg};
pub use word::{hamming_u32, hamming_u64, Word, FP_MANTISSA_BITS, INT_BITS};
