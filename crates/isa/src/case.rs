//! The 2-bit instruction classification used by the steering hardware.

use std::fmt;

use crate::Word;

/// Concatenation of the information bits of an instruction's two operands.
///
/// `C01` means OP1's information bit is 0 and OP2's is 1, matching the
/// paper's "case 01" notation.
///
/// # Examples
///
/// ```
/// use fua_isa::{Case, Word};
///
/// let c = Case::of_operands(Word::int(5), Word::int(-3));
/// assert_eq!(c, Case::C01);
/// assert_eq!(c.swapped(), Case::C10);
/// assert_eq!(c.to_string(), "01");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Case {
    /// Both information bits are 0.
    C00,
    /// OP1's information bit is 0, OP2's is 1.
    C01,
    /// OP1's information bit is 1, OP2's is 0.
    C10,
    /// Both information bits are 1.
    C11,
}

impl Case {
    /// All four cases in index order (`00`, `01`, `10`, `11`).
    pub const ALL: [Case; 4] = [Case::C00, Case::C01, Case::C10, Case::C11];

    /// Builds a case from the two information bits.
    #[inline]
    pub fn from_info_bits(op1: bool, op2: bool) -> Self {
        match (op1, op2) {
            (false, false) => Case::C00,
            (false, true) => Case::C01,
            (true, false) => Case::C10,
            (true, true) => Case::C11,
        }
    }

    /// Classifies a pair of operand values.
    #[inline]
    pub fn of_operands(op1: Word, op2: Word) -> Self {
        Case::from_info_bits(op1.info_bit(), op2.info_bit())
    }

    /// Builds a case from its 2-bit index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 3`.
    #[inline]
    pub fn from_index(index: u8) -> Self {
        match index {
            0 => Case::C00,
            1 => Case::C01,
            2 => Case::C10,
            3 => Case::C11,
            _ => panic!("case index out of range: {index}"),
        }
    }

    /// The 2-bit index (`00` → 0, …, `11` → 3).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Branchless variant of [`Case::from_index`]: the index is masked
    /// to its low two bits, so the conversion compiles to a constant
    /// array load with no panic path. The simulator's issue stage uses
    /// this to turn pre-decoded information bits into a [`Case`]
    /// without a data-dependent branch.
    ///
    /// # Examples
    ///
    /// ```
    /// use fua_isa::Case;
    ///
    /// assert_eq!(Case::from_index_masked(2), Case::C10);
    /// assert_eq!(Case::from_index_masked(0b101_10), Case::C10); // masked
    /// ```
    #[inline]
    pub fn from_index_masked(index: u8) -> Self {
        Case::ALL[(index & 3) as usize]
    }

    /// Swaps a 2-bit case index's operand bits without constructing a
    /// [`Case`]: `index(swapped(c)) == swap_index(index(c))`. Branchless
    /// twin of [`Case::swapped`] for code that carries pre-decoded case
    /// bits through operand swaps.
    ///
    /// # Examples
    ///
    /// ```
    /// use fua_isa::Case;
    ///
    /// for c in Case::ALL {
    ///     let swapped = Case::swap_index(c.index() as u8);
    ///     assert_eq!(Case::from_index_masked(swapped), c.swapped());
    /// }
    /// ```
    #[inline]
    pub fn swap_index(index: u8) -> u8 {
        ((index & 1) << 1) | ((index >> 1) & 1)
    }

    /// OP1's information bit.
    #[inline]
    pub fn op1_bit(self) -> bool {
        matches!(self, Case::C10 | Case::C11)
    }

    /// OP2's information bit.
    #[inline]
    pub fn op2_bit(self) -> bool {
        matches!(self, Case::C01 | Case::C11)
    }

    /// The case obtained by swapping the two operands.
    #[inline]
    pub fn swapped(self) -> Self {
        match self {
            Case::C01 => Case::C10,
            Case::C10 => Case::C01,
            c => c,
        }
    }

    /// Whether swapping the operands changes the case (true only for the
    /// mixed cases 01 and 10).
    #[inline]
    pub fn is_mixed(self) -> bool {
        matches!(self, Case::C01 | Case::C10)
    }
}

impl fmt::Display for Case {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Case::C00 => "00",
            Case::C01 => "01",
            Case::C10 => "10",
            Case::C11 => "11",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_index() {
        for c in Case::ALL {
            assert_eq!(Case::from_index(c.index() as u8), c);
        }
    }

    #[test]
    fn bits_match_notation() {
        assert!(!Case::C01.op1_bit());
        assert!(Case::C01.op2_bit());
        assert!(Case::C10.op1_bit());
        assert!(!Case::C10.op2_bit());
    }

    #[test]
    fn branchless_index_helpers_agree_with_the_enum() {
        for c in Case::ALL {
            assert_eq!(Case::from_index_masked(c.index() as u8), c);
            assert_eq!(
                Case::from_index_masked(Case::swap_index(c.index() as u8)),
                c.swapped()
            );
        }
        // Out-of-range bits are masked, never panicked on.
        assert_eq!(Case::from_index_masked(0xFF), Case::C11);
    }

    #[test]
    fn swap_is_an_involution() {
        for c in Case::ALL {
            assert_eq!(c.swapped().swapped(), c);
        }
        assert_eq!(Case::C00.swapped(), Case::C00);
        assert_eq!(Case::C11.swapped(), Case::C11);
    }

    #[test]
    fn classification_of_fp_operands() {
        let round = Word::fp(2.0);
        let full = Word::fp(0.1);
        assert_eq!(Case::of_operands(round, full), Case::C01);
        assert_eq!(Case::of_operands(full, round), Case::C10);
    }

    #[test]
    #[should_panic]
    fn from_index_rejects_out_of_range() {
        let _ = Case::from_index(4);
    }
}
