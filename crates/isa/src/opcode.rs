//! Opcodes and their steering-relevant metadata.

use std::fmt;

use crate::FuClass;

/// The opcode set of the modelled MIPS-like machine.
///
/// Every opcode carries the metadata the steering and swapping layers need:
/// which functional-unit pool executes it ([`Opcode::fu_class`]), whether
/// its operands may be swapped by hardware ([`Opcode::commutative`]), and
/// whether a compiler may commute it by flipping the opcode
/// ([`Opcode::flipped`], e.g. `sgt` ↔ `slt`).
///
/// Immediate forms are expressed through the instruction's source slots
/// ([`crate::Src::Imm`]) rather than separate opcodes; the software-swap
/// legality check therefore also inspects the operand kinds.
///
/// # Examples
///
/// ```
/// use fua_isa::{FuClass, Opcode};
///
/// assert!(Opcode::Add.commutative());
/// assert!(!Opcode::Sub.commutative());
/// assert_eq!(Opcode::Sgt.flipped(), Some(Opcode::Slt));
/// assert_eq!(Opcode::FMul.fu_class(), Some(FuClass::FpMul));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Opcode {
    // --- integer ALU ---
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOR.
    Nor,
    /// Shift left logical (shift amount from OP2's low 5 bits).
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Set if less than (signed).
    Slt,
    /// Set if less or equal (signed).
    Sle,
    /// Set if greater than (signed).
    Sgt,
    /// Set if greater or equal (signed).
    Sge,
    /// Set if equal.
    Seq,
    /// Set if not equal.
    Sne,
    /// Load immediate into an integer register (`addiu rd, r0, imm`): the
    /// ALU sees OP1 = 0, OP2 = imm.
    Li,

    // --- integer multiplier/divider ---
    /// Integer multiply (low 32 bits of the product).
    Mul,
    /// Integer divide (signed, truncating; divide by zero yields 0).
    Div,
    /// Integer remainder (signed; remainder by zero yields the dividend).
    Rem,

    // --- floating-point adder/subtractor unit ---
    /// Double add.
    FAdd,
    /// Double subtract.
    FSub,
    /// Set integer register if `OP1 < OP2` (double compare).
    FCmpLt,
    /// Set integer register if `OP1 <= OP2`.
    FCmpLe,
    /// Set integer register if `OP1 > OP2`.
    FCmpGt,
    /// Set integer register if `OP1 >= OP2`.
    FCmpGe,
    /// Set integer register if equal.
    FCmpEq,
    /// Set integer register if not equal.
    FCmpNe,
    /// Convert integer to double.
    CvtIf,
    /// Convert double to integer (truncating; saturates on overflow).
    CvtFi,
    /// Double negate.
    FNeg,
    /// Double absolute value.
    FAbs,
    /// Double register move.
    FMov,

    // --- floating-point multiplier/divider ---
    /// Double multiply.
    FMul,
    /// Double divide.
    FDiv,

    // --- memory ---
    /// Load 32-bit integer word.
    Lw,
    /// Store 32-bit integer word.
    Sw,
    /// Load 64-bit double.
    Lf,
    /// Store 64-bit double.
    Sf,

    // --- control ---
    /// Branch if the two integer sources are equal.
    Beq,
    /// Branch if not equal.
    Bne,
    /// Branch if `OP1 <= 0` (signed).
    Blez,
    /// Branch if `OP1 > 0` (signed).
    Bgtz,
    /// Unconditional jump.
    J,
    /// Stop the program.
    Halt,

    // --- decode-level moves (no functional unit) ---
    /// Load a double immediate into an FP register. Modelled as a
    /// decode-level constant injection (compilers materialise FP constants
    /// from the constant pool; we skip the memory traffic — see DESIGN.md).
    FLi,
}

impl Opcode {
    /// The functional-unit pool that executes this opcode, or `None` for
    /// opcodes that occupy no FU (jumps, halts, decode-level moves).
    /// Memory opcodes return `Some(IntAlu)` because their effective-address
    /// add executes on an integer ALU, exactly as in `sim-outorder`.
    pub fn fu_class(self) -> Option<FuClass> {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Nor | Sll | Srl | Sra | Slt | Sle | Sgt | Sge | Seq
            | Sne | Li => Some(FuClass::IntAlu),
            Mul | Div | Rem => Some(FuClass::IntMul),
            FAdd | FSub | FCmpLt | FCmpLe | FCmpGt | FCmpGe | FCmpEq | FCmpNe | CvtIf | CvtFi
            | FNeg | FAbs | FMov => Some(FuClass::FpAlu),
            FMul | FDiv => Some(FuClass::FpMul),
            Lw | Sw | Lf | Sf => Some(FuClass::IntAlu),
            Beq | Bne | Blez | Bgtz => Some(FuClass::IntAlu),
            J | Halt | FLi => None,
        }
    }

    /// Whether the hardware may swap the two operand values without
    /// changing the result (the paper's `Commutative(Ij)` predicate).
    pub fn commutative(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Add | And
                | Or
                | Xor
                | Nor
                | Seq
                | Sne
                | Mul
                | FAdd
                | FMul
                | FCmpEq
                | FCmpNe
                | Beq
                | Bne
        )
    }

    /// The opcode that computes the same function with swapped operands,
    /// for opcodes that are commutable *by the compiler only* (the paper's
    /// `>` → `<=`-style transformation). Commutative opcodes return
    /// themselves; non-commutable opcodes return `None`.
    pub fn flipped(self) -> Option<Opcode> {
        use Opcode::*;
        if self.commutative() {
            return Some(self);
        }
        match self {
            Slt => Some(Sgt),
            Sgt => Some(Slt),
            Sle => Some(Sge),
            Sge => Some(Sle),
            FCmpLt => Some(FCmpGt),
            FCmpGt => Some(FCmpLt),
            FCmpLe => Some(FCmpGe),
            FCmpGe => Some(FCmpLe),
            _ => None,
        }
    }

    /// Whether this opcode reads memory.
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Lw | Opcode::Lf)
    }

    /// Whether this opcode writes memory.
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Sw | Opcode::Sf)
    }

    /// Whether this opcode accesses memory at all.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether this opcode is a conditional branch.
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Opcode::Beq | Opcode::Bne | Opcode::Blez | Opcode::Bgtz
        )
    }

    /// Whether this opcode transfers control at all (branch, jump or halt).
    pub fn is_control(self) -> bool {
        self.is_branch() || matches!(self, Opcode::J | Opcode::Halt)
    }

    /// Whether the instruction has a single data operand; the second FU
    /// input port then latches zero (see the power-model notes in
    /// DESIGN.md).
    pub fn is_unary(self) -> bool {
        use Opcode::*;
        matches!(self, CvtIf | CvtFi | FNeg | FAbs | FMov | Blez | Bgtz)
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Nor => "nor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Slt => "slt",
            Sle => "sle",
            Sgt => "sgt",
            Sge => "sge",
            Seq => "seq",
            Sne => "sne",
            Li => "li",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            FAdd => "fadd",
            FSub => "fsub",
            FCmpLt => "fcmplt",
            FCmpLe => "fcmple",
            FCmpGt => "fcmpgt",
            FCmpGe => "fcmpge",
            FCmpEq => "fcmpeq",
            FCmpNe => "fcmpne",
            CvtIf => "cvtif",
            CvtFi => "cvtfi",
            FNeg => "fneg",
            FAbs => "fabs",
            FMov => "fmov",
            FMul => "fmul",
            FDiv => "fdiv",
            Lw => "lw",
            Sw => "sw",
            Lf => "lf",
            Sf => "sf",
            Beq => "beq",
            Bne => "bne",
            Blez => "blez",
            Bgtz => "bgtz",
            J => "j",
            Halt => "halt",
            FLi => "fli",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_an_involution_where_defined() {
        use Opcode::*;
        for op in [Slt, Sgt, Sle, Sge, FCmpLt, FCmpGt, FCmpLe, FCmpGe] {
            let flipped = op.flipped().expect("compare opcodes are flippable");
            assert_eq!(flipped.flipped(), Some(op));
        }
    }

    #[test]
    fn commutative_opcodes_flip_to_themselves() {
        for op in [Opcode::Add, Opcode::FAdd, Opcode::Mul, Opcode::Seq] {
            assert_eq!(op.flipped(), Some(op));
        }
    }

    #[test]
    fn subtraction_is_not_swappable_in_any_way() {
        assert!(!Opcode::Sub.commutative());
        assert_eq!(Opcode::Sub.flipped(), None);
        assert!(!Opcode::FSub.commutative());
        assert_eq!(Opcode::FSub.flipped(), None);
    }

    #[test]
    fn memory_ops_compute_addresses_on_the_ialu() {
        for op in [Opcode::Lw, Opcode::Sw, Opcode::Lf, Opcode::Sf] {
            assert_eq!(op.fu_class(), Some(FuClass::IntAlu));
            assert!(op.is_mem());
        }
        assert!(Opcode::Lw.is_load());
        assert!(Opcode::Sf.is_store());
        assert!(!Opcode::FLi.is_mem());
    }

    #[test]
    fn control_classification() {
        assert!(Opcode::Beq.is_branch());
        assert!(Opcode::J.is_control());
        assert!(!Opcode::J.is_branch());
        assert!(Opcode::Halt.is_control());
        assert_eq!(Opcode::J.fu_class(), None);
    }

    #[test]
    fn unary_ops_are_marked() {
        assert!(Opcode::CvtIf.is_unary());
        assert!(Opcode::FNeg.is_unary());
        assert!(!Opcode::FAdd.is_unary());
    }
}
