//! Architectural register names.

use std::fmt;

/// Number of integer registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point registers.
pub const NUM_FP_REGS: usize = 32;

/// An integer register name (`r0`–`r31`). `r0` is an ordinary register in
/// this ISA (not hard-wired to zero).
///
/// # Examples
///
/// ```
/// use fua_isa::IntReg;
/// let r = IntReg::new(5);
/// assert_eq!(r.to_string(), "r5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntReg(u8);

/// A floating-point register name (`f0`–`f31`), 64 bits wide.
///
/// # Examples
///
/// ```
/// use fua_isa::FpReg;
/// assert_eq!(FpReg::new(12).index(), 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FpReg(u8);

impl IntReg {
    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub fn new(index: u8) -> Self {
        assert!((index as usize) < NUM_INT_REGS, "int register out of range");
        IntReg(index)
    }

    /// The register number.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FpReg {
    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub fn new(index: u8) -> Self {
        assert!((index as usize) < NUM_FP_REGS, "fp register out of range");
        FpReg(index)
    }

    /// The register number.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Either register kind, used for dependence tracking in the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reg {
    /// An integer register.
    Int(IntReg),
    /// A floating-point register.
    Fp(FpReg),
}

impl Reg {
    /// A dense index over both files (integer regs first).
    #[inline]
    pub fn dense_index(self) -> usize {
        match self {
            Reg::Int(r) => r.index(),
            Reg::Fp(r) => NUM_INT_REGS + r.index(),
        }
    }
}

impl From<IntReg> for Reg {
    fn from(r: IntReg) -> Self {
        Reg::Int(r)
    }
}

impl From<FpReg> for Reg {
    fn from(r: FpReg) -> Self {
        Reg::Fp(r)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Int(r) => r.fmt(f),
            Reg::Fp(r) => r.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_indices_do_not_collide() {
        let a = Reg::from(IntReg::new(31));
        let b = Reg::from(FpReg::new(0));
        assert_ne!(a.dense_index(), b.dense_index());
        assert_eq!(b.dense_index(), 32);
    }

    #[test]
    #[should_panic]
    fn out_of_range_int_reg_panics() {
        let _ = IntReg::new(32);
    }

    #[test]
    #[should_panic]
    fn out_of_range_fp_reg_panics() {
        let _ = FpReg::new(255);
    }
}
