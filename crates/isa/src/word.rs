//! Runtime operand values and bit-level helpers.

use std::fmt;

/// Width of an integer operand in bits.
pub const INT_BITS: u32 = 32;

/// Width of the mantissa of a 64-bit IEEE-754 double.
///
/// The paper's Hamming-distance definition considers "only the mantissa
/// portions" for floating-point values (Section 4 nomenclature), so the
/// power model and the information bit both operate on these 52 bits.
pub const FP_MANTISSA_BITS: u32 = 52;

const FP_MANTISSA_MASK: u64 = (1u64 << FP_MANTISSA_BITS) - 1;

/// Hamming distance between two 32-bit words.
///
/// # Examples
///
/// ```
/// assert_eq!(fua_isa::hamming_u32(0b1010, 0b0110), 2);
/// ```
#[inline]
pub fn hamming_u32(a: u32, b: u32) -> u32 {
    (a ^ b).count_ones()
}

/// Hamming distance between two 64-bit words.
///
/// # Examples
///
/// ```
/// assert_eq!(fua_isa::hamming_u64(u64::MAX, 0), 64);
/// ```
#[inline]
pub fn hamming_u64(a: u64, b: u64) -> u64 {
    (a ^ b).count_ones() as u64
}

/// A runtime operand value: either a 32-bit integer or a 64-bit IEEE-754
/// double, as carried on the operand buses of the modelled machine.
///
/// `Word` implements `Eq`/`Hash` by comparing raw bit patterns, which makes
/// `-0.0` and `+0.0` distinct and `NaN` equal to itself. That is the right
/// notion here: the hardware sees bits, not real numbers.
///
/// # Examples
///
/// ```
/// use fua_isa::Word;
///
/// let x = Word::int(-20);
/// assert_eq!(x.bits(), 0xFFFF_FFEC);
/// assert_eq!(x.ham(Word::int(20)), 29); // 0x00000014 ^ 0xFFFFFFEC = 0xFFFFFFF8
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Word {
    /// A 32-bit integer operand, stored as its raw two's-complement bits.
    Int(u32),
    /// A 64-bit double operand, stored as its raw IEEE-754 bits.
    Fp(u64),
}

impl Word {
    /// Creates an integer word from a signed value.
    #[inline]
    pub fn int(v: i32) -> Self {
        Word::Int(v as u32)
    }

    /// Creates a floating-point word from an `f64` value.
    #[inline]
    pub fn fp(v: f64) -> Self {
        Word::Fp(v.to_bits())
    }

    /// Returns `true` for [`Word::Int`].
    #[inline]
    pub fn is_int(self) -> bool {
        matches!(self, Word::Int(_))
    }

    /// Returns `true` for [`Word::Fp`].
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, Word::Fp(_))
    }

    /// The signed integer value.
    ///
    /// # Panics
    ///
    /// Panics if the word is a floating-point value.
    #[inline]
    pub fn as_int(self) -> i32 {
        match self {
            Word::Int(v) => v as i32,
            Word::Fp(_) => panic!("as_int on a floating-point word"),
        }
    }

    /// The floating-point value.
    ///
    /// # Panics
    ///
    /// Panics if the word is an integer value.
    #[inline]
    pub fn as_fp(self) -> f64 {
        match self {
            Word::Fp(b) => f64::from_bits(b),
            Word::Int(_) => panic!("as_fp on an integer word"),
        }
    }

    /// The raw bit pattern, zero-extended to 64 bits for integers.
    #[inline]
    pub fn bits(self) -> u64 {
        match self {
            Word::Int(v) => v as u64,
            Word::Fp(b) => b,
        }
    }

    /// The bits that participate in the power model: all 32 bits for
    /// integers, the 52 mantissa bits for doubles.
    #[inline]
    pub fn power_bits(self) -> u64 {
        match self {
            Word::Int(v) => v as u64,
            Word::Fp(b) => b & FP_MANTISSA_MASK,
        }
    }

    /// Number of bits the power model considers for this word kind.
    #[inline]
    pub fn power_width(self) -> u32 {
        match self {
            Word::Int(_) => INT_BITS,
            Word::Fp(_) => FP_MANTISSA_BITS,
        }
    }

    /// The paper's *information bit* for this operand.
    ///
    /// * integers: the sign bit (bit 31) — sign extension makes the
    ///   remaining bits mostly equal to it;
    /// * doubles: the OR of the least-significant four mantissa bits — zero
    ///   strongly suggests a long run of trailing zeros (integer casts,
    ///   single-precision casts, round constants).
    ///
    /// # Examples
    ///
    /// ```
    /// use fua_isa::Word;
    /// assert!(Word::int(-1).info_bit());
    /// assert!(!Word::int(12345).info_bit());
    /// assert!(!Word::fp(0.5).info_bit());     // exact power of two
    /// assert!(Word::fp(0.1).info_bit());      // full-precision fraction
    /// ```
    #[inline]
    pub fn info_bit(self) -> bool {
        self.info_bit_k(4)
    }

    /// Generalised information bit using the OR of the low `k` mantissa
    /// bits for floats (the paper fixes `k = 4`; the ablation benches sweep
    /// it). Integers always use the sign bit regardless of `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds [`FP_MANTISSA_BITS`].
    #[inline]
    pub fn info_bit_k(self, k: u32) -> bool {
        assert!((1..=FP_MANTISSA_BITS).contains(&k), "k out of range: {k}");
        match self {
            Word::Int(v) => (v >> 31) & 1 == 1,
            Word::Fp(b) => b & ((1u64 << k) - 1) != 0,
        }
    }

    /// Fraction of power-model bits that are 1 (used by the Table-1/3
    /// profilers: "probability of any single bit being high").
    #[inline]
    pub fn ones_fraction(self) -> f64 {
        self.power_bits().count_ones() as f64 / self.power_width() as f64
    }

    /// Number of 1 bits among the power-model bits.
    #[inline]
    pub fn ones(self) -> u32 {
        self.power_bits().count_ones()
    }

    /// Hamming distance to `other` over the power-model bits.
    ///
    /// Mixed-kind distances (an integer module latching a float, or vice
    /// versa) never occur in the modelled machine; in debug builds they
    /// trip an assertion, in release builds the raw power bits are XOR-ed.
    #[inline]
    pub fn ham(self, other: Word) -> u32 {
        debug_assert_eq!(
            self.is_int(),
            other.is_int(),
            "hamming distance across operand kinds"
        );
        (self.power_bits() ^ other.power_bits()).count_ones()
    }
}

impl Default for Word {
    fn default() -> Self {
        Word::Int(0)
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Word::Int(v) => write!(f, "{}", *v as i32),
            Word::Fp(b) => write!(f, "{}", f64::from_bits(*b)),
        }
    }
}

impl fmt::LowerHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Word::Int(v) => fmt::LowerHex::fmt(v, f),
            Word::Fp(b) => fmt::LowerHex::fmt(b, f),
        }
    }
}

impl From<i32> for Word {
    fn from(v: i32) -> Self {
        Word::int(v)
    }
}

impl From<f64> for Word {
    fn from(v: f64) -> Self {
        Word::fp(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_extension_example_from_paper() {
        // Decimal 20 is 0x00000014; decimal -20 is 0xFFFFFFEC. In both,
        // 27 leading bits equal the sign bit.
        let plus = Word::int(20);
        let minus = Word::int(-20);
        assert_eq!(plus.bits(), 0x14);
        assert_eq!(minus.bits(), 0xFFFF_FFEC);
        assert!(!plus.info_bit());
        assert!(minus.info_bit());
        // 20 has two set bits; -20 in two's complement:
        assert_eq!(plus.ones(), 2);
        assert_eq!(minus.ones(), 0xFFFF_FFECu32.count_ones());
    }

    #[test]
    fn fp_mantissa_of_seven_has_fifty_trailing_zeros() {
        // 7.0 = 1.11 * 2^2, stored mantissa "11" followed by 50 zeros.
        let w = Word::fp(7.0);
        let mantissa = w.power_bits();
        assert_eq!(mantissa.trailing_zeros(), 50);
        assert!(!w.info_bit());
    }

    #[test]
    fn fp_info_bit_detects_full_precision() {
        assert!(Word::fp(0.1).info_bit());
        assert!(Word::fp(1.0 / 3.0).info_bit());
        assert!(!Word::fp(0.0).info_bit());
        assert!(!Word::fp(-2.5).info_bit());
        assert!(!Word::fp(1048576.0).info_bit());
    }

    #[test]
    fn info_bit_k_widens_the_window() {
        // A value with exactly one set bit at mantissa position 5 is missed
        // by k=4 but caught by k=8.
        let bits = 0x3FF0_0000_0000_0000u64 | (1 << 5);
        let w = Word::Fp(bits);
        assert!(!w.info_bit_k(4));
        assert!(w.info_bit_k(8));
    }

    #[test]
    fn ham_is_mantissa_only_for_fp() {
        // Same mantissa, wildly different exponents: distance 0.
        let a = Word::fp(1.5);
        let b = Word::fp(3.0);
        assert_eq!(a.ham(b), 0);
        // Integer distance covers all 32 bits.
        assert_eq!(Word::int(0).ham(Word::int(-1)), 32);
    }

    #[test]
    fn power_width_matches_kind() {
        assert_eq!(Word::int(0).power_width(), 32);
        assert_eq!(Word::fp(0.0).power_width(), 52);
    }

    #[test]
    fn display_and_hex() {
        assert_eq!(Word::int(-5).to_string(), "-5");
        assert_eq!(Word::fp(2.5).to_string(), "2.5");
        assert_eq!(format!("{:08x}", Word::int(20)), "00000014");
    }

    #[test]
    #[should_panic]
    fn as_int_on_fp_panics() {
        let _ = Word::fp(1.0).as_int();
    }

    #[test]
    #[should_panic]
    fn info_bit_k_zero_panics() {
        let _ = Word::fp(1.0).info_bit_k(0);
    }
}
