//! Instruction representation.

use std::fmt;

use crate::{FpReg, IntReg, Opcode, Reg};

/// A source operand slot.
///
/// # Examples
///
/// ```
/// use fua_isa::{IntReg, Src};
///
/// let s = Src::from(IntReg::new(3));
/// assert!(s.is_reg());
/// assert_eq!(Src::Imm(42).to_string(), "42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// An integer register.
    IReg(IntReg),
    /// A floating-point register.
    FReg(FpReg),
    /// A 32-bit signed immediate.
    Imm(i32),
    /// A double immediate, stored as raw IEEE-754 bits so `Src` stays `Eq`.
    FImm(u64),
    /// The slot is unused by this instruction format.
    None,
}

impl Src {
    /// Creates a double immediate.
    #[inline]
    pub fn fimm(v: f64) -> Self {
        Src::FImm(v.to_bits())
    }

    /// Whether the slot names a register.
    #[inline]
    pub fn is_reg(self) -> bool {
        matches!(self, Src::IReg(_) | Src::FReg(_))
    }

    /// The register named by the slot, if any.
    #[inline]
    pub fn reg(self) -> Option<Reg> {
        match self {
            Src::IReg(r) => Some(Reg::Int(r)),
            Src::FReg(r) => Some(Reg::Fp(r)),
            _ => None,
        }
    }
}

impl From<IntReg> for Src {
    fn from(r: IntReg) -> Self {
        Src::IReg(r)
    }
}

impl From<FpReg> for Src {
    fn from(r: FpReg) -> Self {
        Src::FReg(r)
    }
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::IReg(r) => r.fmt(f),
            Src::FReg(r) => r.fmt(f),
            Src::Imm(v) => v.fmt(f),
            Src::FImm(b) => f64::from_bits(*b).fmt(f),
            Src::None => f.write_str("-"),
        }
    }
}

/// One static instruction.
///
/// Formats by opcode family:
///
/// * ALU/FPU ops: `dst`, `src1`, `src2` (the second source may be an
///   immediate);
/// * unary ops: `dst`, `src1`;
/// * loads: `dst`, `src1` = base register, `imm` = byte offset;
/// * stores: `src1` = data register, `src2` = base register, `imm` = offset;
/// * branches: `src1`, `src2` (compare sources), `imm` = target instruction
///   index (patched by [`crate::ProgramBuilder`]);
/// * `j`: `imm` = target; `halt`: no operands.
///
/// Instructions are built and validated by [`crate::ProgramBuilder`];
/// constructing them directly is possible but skips format validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The opcode.
    pub op: Opcode,
    /// Destination register, if the instruction writes one.
    pub dst: Option<Reg>,
    /// First source slot.
    pub src1: Src,
    /// Second source slot.
    pub src2: Src,
    /// Memory byte offset or control-transfer target index.
    pub imm: i32,
}

impl Inst {
    /// Creates an instruction with no destination and no immediate.
    pub fn new(op: Opcode, src1: Src, src2: Src) -> Self {
        Inst {
            op,
            dst: None,
            src1,
            src2,
            imm: 0,
        }
    }

    /// Returns the instruction with `dst` set.
    pub fn with_dst(mut self, dst: impl Into<Reg>) -> Self {
        self.dst = Some(dst.into());
        self
    }

    /// Returns the instruction with `imm` set.
    pub fn with_imm(mut self, imm: i32) -> Self {
        self.imm = imm;
        self
    }

    /// Whether a compiler may reorder this instruction's operands: the
    /// opcode must be commutable in software ([`Opcode::flipped`]) and both
    /// sources must be registers — an immediate is locked into the second
    /// slot by the machine encoding, exactly the limitation the paper
    /// describes for immediate adds.
    pub fn software_swappable(&self) -> bool {
        self.op.flipped().is_some() && self.src1.is_reg() && self.src2.is_reg()
    }

    /// The instruction with operands swapped and the opcode flipped
    /// accordingly, or `None` when [`Inst::software_swappable`] is false.
    pub fn swapped(&self) -> Option<Inst> {
        if !self.software_swappable() {
            return None;
        }
        let op = self.op.flipped()?;
        Some(Inst {
            op,
            dst: self.dst,
            src1: self.src2,
            src2: self.src1,
            imm: self.imm,
        })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        if let Some(d) = self.dst {
            write!(f, " {d},")?;
        }
        match (self.src1, self.src2) {
            (Src::None, Src::None) => {}
            (a, Src::None) => write!(f, " {a}")?,
            (a, b) => write!(f, " {a}, {b}")?,
        }
        if self.op.is_mem() || self.op.is_control() {
            write!(f, " [{}]", self.imm)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IntReg;

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    #[test]
    fn swap_flips_compare_opcodes() {
        let inst = Inst::new(Opcode::Sgt, r(1).into(), r(2).into()).with_dst(r(3));
        let swapped = inst.swapped().expect("sgt of two regs is swappable");
        assert_eq!(swapped.op, Opcode::Slt);
        assert_eq!(swapped.src1, Src::IReg(r(2)));
        assert_eq!(swapped.src2, Src::IReg(r(1)));
        assert_eq!(swapped.dst, inst.dst);
    }

    #[test]
    fn immediate_operand_blocks_software_swap() {
        let inst = Inst::new(Opcode::Add, r(1).into(), Src::Imm(4)).with_dst(r(1));
        assert!(inst.op.commutative());
        assert!(!inst.software_swappable());
        assert!(inst.swapped().is_none());
    }

    #[test]
    fn subtract_is_never_swapped() {
        let inst = Inst::new(Opcode::Sub, r(1).into(), r(2).into()).with_dst(r(3));
        assert!(inst.swapped().is_none());
    }

    #[test]
    fn display_round_trip_smoke() {
        let inst = Inst::new(Opcode::Add, r(1).into(), Src::Imm(4)).with_dst(r(2));
        assert_eq!(inst.to_string(), "add r2, r1, 4");
        let lw = Inst::new(Opcode::Lw, r(5).into(), Src::None)
            .with_dst(r(6))
            .with_imm(16);
        assert_eq!(lw.to_string(), "lw r6, r5 [16]");
    }
}
