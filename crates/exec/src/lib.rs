//! Deterministic parallel experiment executor.
//!
//! Every experiment cell of the suite — one (unit × scheme × workload ×
//! swap-variant) simulation — is independent given the run manifest's
//! seeds, so a sweep can fan out across OS threads without changing a
//! single number. This crate provides the minimal machinery to do that
//! **deterministically**: [`map_indexed`] runs a closure over a slice of
//! cells on a scoped [`std::thread`] pool with a chunked work queue and
//! returns the results **in cell-index order**, regardless of which
//! worker finished which cell first. Callers then merge results with a
//! plain serial fold, so a parallel sweep is byte-identical to the
//! serial one by construction — only wall-clock differs.
//!
//! Dependency-free on purpose: the workspace builds offline, so the pool
//! is `std::thread::scope` + one `AtomicUsize` cursor, not an external
//! runtime. Cells are coarse (one full simulation each, milliseconds to
//! seconds), so a lock around the result slots is negligible next to the
//! work itself.
//!
//! [`Jobs::serial()`] (or `--jobs 1` on the CLI) bypasses the pool
//! entirely and runs the cells in order on the calling thread — exactly
//! the pre-parallel code path.
//!
//! # Examples
//!
//! ```
//! use fua_exec::{map_indexed, Jobs};
//!
//! let cells: Vec<u64> = (0..100).collect();
//! let serial = map_indexed(Jobs::serial(), &cells, |i, &c| (i as u64) * c);
//! let parallel = map_indexed(Jobs::new(4).unwrap(), &cells, |i, &c| (i as u64) * c);
//! assert_eq!(serial, parallel); // order and values, not just the set
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod progress;

use progress::{current_stage, heartbeat_add_cells, heartbeat_sweep_summary, heartbeat_tick};
pub use progress::{enable_heartbeat, heartbeat_enabled, heartbeat_stage};

use fua_obs::HarnessSpan;

use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Worker count for a parallel sweep.
///
/// Always at least 1. [`Jobs::auto()`] asks the OS for the machine's
/// available parallelism; [`Jobs::serial()`] pins the sweep to the
/// calling thread (the reference path every parallel run must reproduce
/// bit-for-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Jobs(NonZeroUsize);

impl Jobs {
    /// Exactly one worker: cells run in order on the calling thread with
    /// no pool, no atomics and no locks.
    pub fn serial() -> Self {
        Jobs(NonZeroUsize::MIN)
    }

    /// `n` workers; `None` if `n` is 0.
    pub fn new(n: usize) -> Option<Self> {
        NonZeroUsize::new(n).map(Jobs)
    }

    /// The machine's available parallelism (falls back to 1 when the OS
    /// cannot say).
    pub fn auto() -> Self {
        Jobs(std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0.get()
    }

    /// Whether this is the single-threaded reference path.
    pub fn is_serial(self) -> bool {
        self.get() == 1
    }
}

impl Default for Jobs {
    /// [`Jobs::auto()`].
    fn default() -> Self {
        Jobs::auto()
    }
}

impl fmt::Display for Jobs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.get())
    }
}

impl std::str::FromStr for Jobs {
    type Err = String;

    /// Parses a `--jobs` value: a positive integer.
    fn from_str(s: &str) -> Result<Self, String> {
        let n: usize = s
            .parse()
            .map_err(|_| format!("expected a positive integer, got `{s}`"))?;
        Jobs::new(n).ok_or_else(|| "job count must be at least 1".to_string())
    }
}

/// One worker's share of a sweep: how many cells it claimed and how long
/// it was busy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// Cells this worker executed.
    pub cells: u64,
    /// Wall-clock the worker spent executing cells, in nanoseconds.
    pub nanos: u64,
}

/// Telemetry of one parallel sweep (or of several merged sweeps): the
/// configured worker count, the sweep's wall-clock, and per-worker busy
/// time. Everything here is *measurement*, never model state — two runs
/// differ in these numbers while agreeing on every simulated bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Workers the sweep was configured with.
    pub jobs: usize,
    /// Wall-clock of the whole sweep, in nanoseconds.
    pub wall_nanos: u64,
    /// Per-worker busy time, indexed by worker id.
    pub workers: Vec<WorkerStat>,
}

impl ExecReport {
    /// Total cells executed across all workers.
    pub fn cells(&self) -> u64 {
        self.workers.iter().map(|w| w.cells).sum()
    }

    /// Total busy nanoseconds across all workers (≈ serial wall-clock of
    /// the same sweep).
    pub fn busy_nanos(&self) -> u64 {
        self.workers.iter().map(|w| w.nanos).sum()
    }

    /// Fraction of the pool's wall-clock capacity spent executing cells:
    /// `busy / (jobs × wall)`, in `[0, 1]`-ish (scheduling jitter can
    /// nudge it past 1 by a hair). Zero when nothing was measured.
    pub fn busy_fraction(&self) -> f64 {
        let capacity = (self.jobs as u64).saturating_mul(self.wall_nanos);
        if capacity == 0 {
            return 0.0;
        }
        self.busy_nanos() as f64 / capacity as f64
    }

    /// Load-imbalance ratio: the busiest worker's nanoseconds over the
    /// mean worker's. 1.0 is perfectly balanced; 1.0 also when nothing
    /// was measured (no worker did work).
    pub fn imbalance(&self) -> f64 {
        let busy = self.busy_nanos();
        if busy == 0 || self.workers.is_empty() {
            return 1.0;
        }
        let mean = busy as f64 / self.workers.len() as f64;
        let max = self.workers.iter().map(|w| w.nanos).max().unwrap_or(0);
        max as f64 / mean
    }

    /// Folds another sweep's telemetry into this one: worker stats add
    /// index-wise, wall-clocks add (sequential sweeps), and the job
    /// count takes the maximum (the pool size the run was granted).
    pub fn merge(&mut self, other: &ExecReport) {
        self.jobs = self.jobs.max(other.jobs);
        self.wall_nanos += other.wall_nanos;
        if self.workers.len() < other.workers.len() {
            self.workers
                .resize(other.workers.len(), WorkerStat::default());
        }
        for (slot, w) in self.workers.iter_mut().zip(&other.workers) {
            slot.cells += w.cells;
            slot.nanos += w.nanos;
        }
    }
}

/// How many cells a worker claims per queue visit: enough to amortise
/// the (already tiny) cursor contention on fine-grained sweeps, small
/// enough to keep the tail balanced on coarse ones.
fn chunk_size(cells: usize, jobs: usize) -> usize {
    // Aim for ~4 claims per worker so a slow chunk cannot strand more
    // than a quarter of one worker's share at the tail.
    (cells / (jobs * 4)).max(1)
}

/// Maps `f` over `items` with `jobs` workers, returning results in
/// **item-index order** — the order, not just the multiset, matches the
/// serial `items.iter().enumerate().map(...)` exactly, so any serial
/// fold over the returned vector is deterministic regardless of worker
/// scheduling.
///
/// With [`Jobs::serial()`] no thread, atomic or lock is involved; the
/// closure runs in order on the calling thread.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins every worker first).
pub fn map_indexed<T, R, F>(jobs: Jobs, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_indexed_timed(jobs, items, f).0
}

/// As [`map_indexed`], additionally returning the sweep's [`ExecReport`]
/// (wall-clock, per-worker busy time and cell counts).
pub fn map_indexed_timed<T, R, F>(jobs: Jobs, items: &[T], f: F) -> (Vec<R>, ExecReport)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let sweep = Instant::now();
    heartbeat_add_cells(items.len() as u64);
    // Span collection is decided once per sweep: one relaxed load, and
    // the stage label is cloned into each recorded span so the timeline
    // can group chunks by pipeline stage.
    let spans_on = fua_obs::spans_enabled() && !items.is_empty();
    let stage = if spans_on {
        current_stage()
    } else {
        String::new()
    };
    // The serial path is the reference semantics: plain in-order
    // iteration on the calling thread.
    if jobs.is_serial() || items.len() <= 1 {
        let span_start = fua_obs::now_nanos();
        let start = Instant::now();
        let results: Vec<R> = items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let r = f(i, t);
                heartbeat_tick(1);
                r
            })
            .collect();
        let nanos = elapsed_nanos(start);
        if spans_on {
            // The whole serial sweep is one busy segment of worker 0.
            fua_obs::record_spans(vec![HarnessSpan {
                worker: 0,
                stage,
                lo: 0,
                hi: items.len() as u32,
                queue_depth: items.len() as u32,
                start_nanos: span_start,
                end_nanos: fua_obs::now_nanos(),
            }]);
        }
        let report = ExecReport {
            jobs: 1,
            wall_nanos: elapsed_nanos(sweep),
            workers: vec![WorkerStat {
                cells: items.len() as u64,
                nanos,
            }],
        };
        heartbeat_sweep_summary(&report);
        return (results, report);
    }

    let workers = jobs.get().min(items.len());
    let chunk = chunk_size(items.len(), workers);
    let cursor = AtomicUsize::new(0);
    // One slot per cell; workers fill slots by index, so completion
    // order is irrelevant to the returned ordering.
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let stats: Mutex<Vec<WorkerStat>> = Mutex::new(vec![WorkerStat::default(); workers]);

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let cursor = &cursor;
            let slots = &slots;
            let stats = &stats;
            let f = &f;
            let stage = &stage;
            scope.spawn(move || {
                let start = Instant::now();
                let mut cells = 0u64;
                // Worker-local span batch: no lock and no shared state
                // while chunks execute; merged once when the worker
                // runs out of work.
                let mut spans: Vec<HarnessSpan> = Vec::new();
                loop {
                    let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if lo >= items.len() {
                        break;
                    }
                    let hi = (lo + chunk).min(items.len());
                    let span_start = if spans_on { fua_obs::now_nanos() } else { 0 };
                    // Compute the whole chunk outside the lock …
                    let batch: Vec<(usize, R)> = (lo..hi).map(|i| (i, f(i, &items[i]))).collect();
                    if spans_on {
                        spans.push(HarnessSpan {
                            worker: worker as u32,
                            stage: stage.clone(),
                            lo: lo as u32,
                            hi: hi as u32,
                            // Cells still unclaimed at the moment this
                            // chunk was claimed — the queue-occupancy
                            // sample.
                            queue_depth: (items.len() - lo) as u32,
                            start_nanos: span_start,
                            end_nanos: fua_obs::now_nanos(),
                        });
                    }
                    cells += (hi - lo) as u64;
                    heartbeat_tick((hi - lo) as u64);
                    // … then file the results into their index slots.
                    let mut guard = slots.lock().expect("result slots poisoned");
                    for (i, r) in batch {
                        guard[i] = Some(r);
                    }
                }
                fua_obs::record_spans(spans);
                stats.lock().expect("worker stats poisoned")[worker] = WorkerStat {
                    cells,
                    nanos: elapsed_nanos(start),
                };
            });
        }
    });

    let results: Vec<R> = slots
        .into_inner()
        .expect("result slots poisoned")
        .into_iter()
        .map(|slot| slot.expect("every cell index was claimed exactly once"))
        .collect();
    let report = ExecReport {
        jobs: workers,
        wall_nanos: elapsed_nanos(sweep),
        workers: stats.into_inner().expect("worker stats poisoned"),
    };
    heartbeat_sweep_summary(&report);
    (results, report)
}

fn elapsed_nanos(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order_and_value() {
        let items: Vec<u64> = (0..257).map(|i| i * 31 % 97).collect();
        let f = |i: usize, &x: &u64| (i as u64) ^ (x << 3);
        let serial = map_indexed(Jobs::serial(), &items, f);
        for jobs in [2, 3, 4, 7, 64] {
            let parallel = map_indexed(Jobs::new(jobs).unwrap(), &items, f);
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn an_order_sensitive_fold_is_reproduced() {
        // Floating-point summation is not associative, so this fold only
        // agrees if the returned order is exactly the serial order.
        let items: Vec<f64> = (0..1000).map(|i| 1.0 / (i as f64 + 0.1)).collect();
        let serial: f64 = map_indexed(Jobs::serial(), &items, |_, &x| x * 1.0000001)
            .iter()
            .sum();
        let parallel: f64 = map_indexed(Jobs::new(8).unwrap(), &items, |_, &x| x * 1.0000001)
            .iter()
            .sum();
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        map_indexed(Jobs::new(5).unwrap(), &hits, |_, h| {
            h.fetch_add(1, Ordering::Relaxed)
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "cell {i}");
        }
    }

    #[test]
    fn report_accounts_for_every_cell() {
        let items: Vec<u32> = (0..64).collect();
        let (_, report) = map_indexed_timed(Jobs::new(4).unwrap(), &items, |_, &x| x + 1);
        assert_eq!(report.jobs, 4);
        assert_eq!(report.cells(), 64);
        assert_eq!(report.workers.len(), 4);

        let (_, serial) = map_indexed_timed(Jobs::serial(), &items, |_, &x| x + 1);
        assert_eq!(serial.jobs, 1);
        assert_eq!(serial.workers.len(), 1);
        assert_eq!(serial.cells(), 64);
    }

    #[test]
    fn pool_never_exceeds_the_cell_count() {
        let items = [1u8, 2];
        let (_, report) = map_indexed_timed(Jobs::new(16).unwrap(), &items, |_, &x| x);
        assert!(report.jobs <= 2, "jobs={}", report.jobs);
        assert_eq!(report.cells(), 2);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: [u8; 0] = [];
        let (out, report) = map_indexed_timed(Jobs::new(8).unwrap(), &items, |_, &x| x);
        assert!(out.is_empty());
        assert_eq!(report.cells(), 0);
    }

    #[test]
    fn reports_merge_index_wise() {
        let mut a = ExecReport {
            jobs: 2,
            wall_nanos: 10,
            workers: vec![
                WorkerStat { cells: 3, nanos: 7 },
                WorkerStat { cells: 1, nanos: 2 },
            ],
        };
        let b = ExecReport {
            jobs: 4,
            wall_nanos: 5,
            workers: vec![
                WorkerStat { cells: 1, nanos: 1 },
                WorkerStat { cells: 1, nanos: 1 },
                WorkerStat { cells: 2, nanos: 4 },
                WorkerStat { cells: 0, nanos: 0 },
            ],
        };
        a.merge(&b);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.wall_nanos, 15);
        assert_eq!(a.workers.len(), 4);
        assert_eq!(a.workers[0], WorkerStat { cells: 4, nanos: 8 });
        assert_eq!(a.workers[2], WorkerStat { cells: 2, nanos: 4 });
        assert_eq!(a.cells(), 8);
        assert_eq!(a.busy_nanos(), 15);
    }

    #[test]
    fn utilization_helpers_handle_empty_and_balanced_reports() {
        let empty = ExecReport::default();
        assert_eq!(empty.busy_fraction(), 0.0);
        assert_eq!(empty.imbalance(), 1.0);

        let balanced = ExecReport {
            jobs: 2,
            wall_nanos: 100,
            workers: vec![
                WorkerStat {
                    cells: 1,
                    nanos: 80,
                },
                WorkerStat {
                    cells: 1,
                    nanos: 80,
                },
            ],
        };
        assert!((balanced.busy_fraction() - 0.8).abs() < 1e-12);
        assert!((balanced.imbalance() - 1.0).abs() < 1e-12);

        let skewed = ExecReport {
            jobs: 2,
            wall_nanos: 100,
            workers: vec![
                WorkerStat {
                    cells: 1,
                    nanos: 90,
                },
                WorkerStat {
                    cells: 1,
                    nanos: 30,
                },
            ],
        };
        // max 90 over mean 60 = 1.5
        assert!((skewed.imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn spans_partition_the_sweep_once_enabled() {
        // Span state is process-global and other tests sweep
        // concurrently, so this test identifies its own spans by a
        // unique item count: claim-time queue depth plus claim offset
        // always equals the sweep's cell count.
        let items: Vec<u32> = (0..4096).collect();
        fua_obs::enable_spans();
        let _ = map_indexed(Jobs::serial(), &items, |_, &x| x);
        let _ = map_indexed(Jobs::new(4).unwrap(), &items, |_, &x| x + 1);
        let spans = fua_obs::drain_spans();
        let mine: Vec<_> = spans
            .iter()
            .filter(|s| s.lo + s.queue_depth == 4096)
            .collect();
        let covered: u32 = mine.iter().map(|s| s.hi - s.lo).sum();
        assert_eq!(
            covered,
            4096 * 2,
            "one serial sweep span plus parallel chunks partitioning the cells"
        );
        for s in &mine {
            assert!(s.end_nanos >= s.start_nanos);
            assert!(s.hi > s.lo && s.hi <= 4096);
        }
    }

    #[test]
    fn jobs_parse_and_render() {
        assert_eq!("4".parse::<Jobs>().unwrap().get(), 4);
        assert!("0".parse::<Jobs>().is_err());
        assert!("four".parse::<Jobs>().is_err());
        assert_eq!(Jobs::new(3).unwrap().to_string(), "3");
        assert!(Jobs::serial().is_serial());
        assert!(Jobs::auto().get() >= 1);
        assert!(!Jobs::new(2).unwrap().is_serial());
    }

    #[test]
    fn chunking_covers_the_range() {
        assert_eq!(chunk_size(0, 4), 1);
        assert_eq!(chunk_size(7, 4), 1);
        assert_eq!(chunk_size(160, 4), 10);
    }
}
