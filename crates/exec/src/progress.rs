//! Opt-in progress heartbeat for long sweeps.
//!
//! Observability rule one in this workspace: stdout is machine-clean
//! and artifacts are byte-identical whether or not anyone is watching.
//! The heartbeat therefore lives entirely on **stderr**, is **off by
//! default**, and touches nothing the model computes: when enabled (the
//! CLI's `--progress`), a detached thread prints one status line per
//! interval — elapsed wall-clock, the current stage label, the sweep
//! cell counters that [`map_indexed_timed`](crate::map_indexed_timed)
//! ticks as workers finish chunks, and a linear-extrapolation ETA.
//! Each finished sweep additionally prints a per-stage utilization
//! summary (busy fraction and load imbalance from the worker stats).
//!
//! The state is process-global atomics, so enabling it requires **zero
//! signature changes** anywhere in the call graph: the executor ticks
//! unconditionally-cheap relaxed atomics, and the commands sprinkle
//! [`heartbeat_stage`] labels at their phase boundaries. When the
//! heartbeat is disabled the only cost is one relaxed load per sweep.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

static ENABLED: AtomicBool = AtomicBool::new(false);
static DONE: AtomicU64 = AtomicU64::new(0);
static TOTAL: AtomicU64 = AtomicU64::new(0);
static STAGE: Mutex<String> = Mutex::new(String::new());
static START: OnceLock<Instant> = OnceLock::new();

/// Whether the heartbeat has been enabled for this process.
pub fn heartbeat_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the heartbeat on: from now until process exit, a detached
/// thread prints a `progress:` line to stderr every `interval`.
///
/// Idempotent — only the first call spawns the thread, and there is no
/// way to turn the heartbeat off again (it is process-scoped opt-in,
/// mirroring the CLI flag's lifetime). Stdout and every artifact are
/// unaffected by construction: nothing in this module writes anywhere
/// but stderr.
pub fn enable_heartbeat(interval: Duration) {
    if ENABLED.swap(true, Ordering::SeqCst) {
        return;
    }
    START.get_or_init(Instant::now);
    // Detached on purpose: the thread must not keep the process alive,
    // and `std::thread::sleep` cannot be interrupted anyway. Dropping
    // the handle is exactly the semantics wanted.
    let spawned = std::thread::Builder::new()
        .name("fua-heartbeat".to_string())
        .spawn(move || loop {
            std::thread::sleep(interval);
            print_line();
        });
    // A spawn failure (resource exhaustion) silently degrades to
    // stage-line-only progress; the run itself must not care.
    drop(spawned);
}

/// Records the current stage label and prints one progress line
/// immediately, so short runs still show each stage even when they
/// finish within the first interval.
///
/// The label is recorded unconditionally (the harness span collector
/// reads it to tag worker chunks per stage); printing still happens
/// only once [`enable_heartbeat`] ran.
pub fn heartbeat_stage(label: &str) {
    if let Ok(mut stage) = STAGE.lock() {
        stage.clear();
        stage.push_str(label);
    }
    if !heartbeat_enabled() {
        return;
    }
    print_line();
}

/// The most recent stage label (empty before any [`heartbeat_stage`]).
pub(crate) fn current_stage() -> String {
    STAGE.lock().map(|s| s.clone()).unwrap_or_default()
}

/// Prints a one-line worker-utilization summary for a finished sweep:
/// pool size, busy fraction and load imbalance. Called by the executor
/// after every sweep; stderr-only and a no-op unless the heartbeat is
/// enabled, like every other line in this module.
pub(crate) fn heartbeat_sweep_summary(report: &crate::ExecReport) {
    if !heartbeat_enabled() || report.cells() == 0 {
        return;
    }
    let stage = stage_label();
    eprintln!(
        "progress: stage {stage}: {} cells on {} worker(s), busy {:>5.1}%, imbalance {:.2}",
        report.cells(),
        report.jobs,
        report.busy_fraction() * 100.0,
        report.imbalance()
    );
}

/// Adds `n` cells to the outstanding-work denominator. Called by the
/// executor when a sweep starts.
pub(crate) fn heartbeat_add_cells(n: u64) {
    if heartbeat_enabled() {
        TOTAL.fetch_add(n, Ordering::Relaxed);
    }
}

/// Marks `n` cells finished. Called by the executor as chunks complete.
pub(crate) fn heartbeat_tick(n: u64) {
    if heartbeat_enabled() {
        DONE.fetch_add(n, Ordering::Relaxed);
    }
}

fn stage_label() -> String {
    STAGE
        .lock()
        .map(|s| {
            if s.is_empty() {
                "-".to_string()
            } else {
                s.clone()
            }
        })
        .unwrap_or_else(|_| "-".to_string())
}

fn print_line() {
    let elapsed = START.get().map(|s| s.elapsed()).unwrap_or_default();
    let done = DONE.load(Ordering::Relaxed);
    let total = TOTAL.load(Ordering::Relaxed);
    let stage = stage_label();
    // ETA by linear extrapolation over cells; "-" until the first cell
    // lands (or once the sweep total is met), so the line never shows a
    // wild early estimate.
    let eta = if done == 0 || total <= done {
        "-".to_string()
    } else {
        let per_cell = elapsed.as_secs_f64() / done as f64;
        format!("{:.1}s", per_cell * (total - done) as f64)
    };
    eprintln!(
        "progress: {:>6.1}s  {stage}  {done}/{total} cells  eta {eta}",
        elapsed.as_secs_f64()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    // The heartbeat is process-global, so there is exactly one test
    // function: once enabled it cannot be disabled for a later test.
    #[test]
    fn heartbeat_is_off_by_default_then_sticky_and_counting() {
        assert!(!heartbeat_enabled());
        // Disabled: ticks are dropped, stage is a no-op.
        heartbeat_tick(5);
        heartbeat_add_cells(5);
        heartbeat_stage("ignored");
        assert_eq!(DONE.load(Ordering::Relaxed), 0);
        assert_eq!(TOTAL.load(Ordering::Relaxed), 0);
        // The label itself is recorded even while disabled: the span
        // collector tags worker chunks with it.
        assert_eq!(current_stage(), "ignored");

        enable_heartbeat(Duration::from_secs(3600));
        assert!(heartbeat_enabled());
        enable_heartbeat(Duration::from_secs(3600)); // idempotent
        heartbeat_stage("warmup");
        assert_eq!(current_stage(), "warmup");
        // The sweep summary is stderr-only; exercise both the zero-cell
        // early return and a real report.
        heartbeat_sweep_summary(&crate::ExecReport::default());
        heartbeat_sweep_summary(&crate::ExecReport {
            jobs: 2,
            wall_nanos: 10,
            workers: vec![crate::WorkerStat { cells: 4, nanos: 9 }],
        });
        heartbeat_add_cells(7);
        heartbeat_tick(3);
        heartbeat_tick(4);
        // Other tests' sweeps may tick concurrently once enabled, so
        // the counters are checked as lower bounds and deltas.
        assert!(DONE.load(Ordering::Relaxed) >= 7);
        assert!(TOTAL.load(Ordering::Relaxed) >= 7);

        // A sweep through the executor ticks the counters too.
        let done_before = DONE.load(Ordering::Relaxed);
        let total_before = TOTAL.load(Ordering::Relaxed);
        let items: Vec<u32> = (0..10).collect();
        let out = crate::map_indexed(crate::Jobs::new(3).unwrap(), &items, |_, &x| x * 2);
        assert_eq!(out[9], 18);
        assert!(DONE.load(Ordering::Relaxed) >= done_before + 10);
        assert!(TOTAL.load(Ordering::Relaxed) >= total_before + 10);
    }
}
