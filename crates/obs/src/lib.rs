//! Harness self-observability primitives: allocation counters and
//! worker-span collection.
//!
//! Every other crate in the workspace observes the *simulated* machine;
//! this one observes the harness that runs it — the `fua-exec` worker
//! pool, the `fua-sim` arena pool, and the heap underneath both. It is
//! dependency-free and deliberately tiny: a counting [`GlobalAlloc`]
//! wrapper ([`CountingAlloc`]) that binaries opt into, process-global
//! relaxed-atomic counters for arena pool traffic, and a span collector
//! that worker threads append to lock-free (each worker batches its
//! spans locally and merges once per sweep).
//!
//! Everything here is **measurement, never model state**: enabling or
//! disabling any of it cannot change a simulated bit. The only cost
//! when disabled is a relaxed atomic load at each hook site.
//!
//! [`GlobalAlloc`]: std::alloc::GlobalAlloc

// NOT `forbid(unsafe_code)`: implementing `GlobalAlloc` requires an
// `unsafe impl`. The two unsafe blocks below only forward to `System`.
#![deny(missing_docs)]

mod alloc;
mod span;

pub use alloc::{alloc_snapshot, counting_allocator_active, AllocSnapshot, CountingAlloc};
pub use span::{
    arena_counters, drain_arena_events, drain_spans, enable_spans, note_arena_lease,
    note_arena_return, now_nanos, record_spans, spans_enabled, ArenaCounters, ArenaEvent,
    ArenaEventKind, HarnessSpan,
};
