//! Process-global collection of harness spans and arena-pool events.
//!
//! The `fua-exec` worker loop batches one [`HarnessSpan`] per claimed
//! chunk into a worker-local `Vec` (no locks, no atomics while the
//! chunk runs) and merges the batch here once per sweep. The `fua-sim`
//! arena pool notes every lease and return on relaxed counters, plus a
//! timestamped [`ArenaEvent`] when span collection is enabled.
//!
//! Collection is **off by default** — the only disabled-path cost is a
//! relaxed load per hook — and must be switched on with
//! [`enable_spans`] before a sweep. Draining sorts by content fields
//! (stage, item range, worker), so the *order* of a drained list is
//! deterministic even though its timestamps are wall-clock.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SPANS: Mutex<Vec<HarnessSpan>> = Mutex::new(Vec::new());
static EVENTS: Mutex<Vec<ArenaEvent>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

static LEASES: AtomicU64 = AtomicU64::new(0);
static FRESH: AtomicU64 = AtomicU64::new(0);
static RETURNS: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// One worker's busy segment: a chunk of sweep cells claimed from the
/// work queue and executed back-to-back.
///
/// `queue_depth` is the number of cells still unclaimed at the moment
/// this chunk was claimed — sampling it at every claim point yields the
/// queue-occupancy distribution the queueing-model literature says to
/// look at instead of averages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessSpan {
    /// Worker index within the sweep's pool (0-based).
    pub worker: u32,
    /// Stage label active when the chunk was claimed (e.g. "telemetry").
    pub stage: String,
    /// First cell index of the chunk (inclusive).
    pub lo: u32,
    /// One past the last cell index of the chunk.
    pub hi: u32,
    /// Cells still unclaimed when this chunk was claimed.
    pub queue_depth: u32,
    /// Chunk start, nanoseconds since the collector epoch.
    pub start_nanos: u64,
    /// Chunk end, nanoseconds since the collector epoch.
    pub end_nanos: u64,
}

/// What happened at the arena pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaEventKind {
    /// A run leased an arena that was waiting in the thread-local pool.
    LeasePooled,
    /// A run leased an arena that had to be freshly allocated.
    LeaseFresh,
    /// A finished run returned its arena to the pool.
    ReturnPooled,
    /// A finished run dropped its arena because the pool was full.
    ReturnDropped,
}

impl ArenaEventKind {
    /// Stable lowercase label, used for track names and metrics.
    pub fn label(self) -> &'static str {
        match self {
            ArenaEventKind::LeasePooled => "lease-pooled",
            ArenaEventKind::LeaseFresh => "lease-fresh",
            ArenaEventKind::ReturnPooled => "return-pooled",
            ArenaEventKind::ReturnDropped => "return-dropped",
        }
    }
}

/// A timestamped arena-pool event (recorded only while span collection
/// is enabled; the counters in [`ArenaCounters`] always run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaEvent {
    /// Event kind.
    pub kind: ArenaEventKind,
    /// Nanoseconds since the collector epoch.
    pub nanos: u64,
}

/// Cumulative arena-pool traffic for this process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaCounters {
    /// Total leases (pooled + fresh).
    pub leases: u64,
    /// Leases that allocated a fresh arena (pool was empty).
    pub fresh: u64,
    /// Arenas returned to the pool.
    pub returns: u64,
    /// Arenas dropped on return because the pool was full.
    pub dropped: u64,
}

impl ArenaCounters {
    /// The traffic between `earlier` and `self`.
    pub fn delta(&self, earlier: &ArenaCounters) -> ArenaCounters {
        ArenaCounters {
            leases: self.leases.wrapping_sub(earlier.leases),
            fresh: self.fresh.wrapping_sub(earlier.fresh),
            returns: self.returns.wrapping_sub(earlier.returns),
            dropped: self.dropped.wrapping_sub(earlier.dropped),
        }
    }
}

/// Whether span collection is on for this process.
pub fn spans_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span collection on (idempotent, process-scoped — mirrors the
/// heartbeat's lifetime) and pins the collector epoch.
pub fn enable_spans() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Nanoseconds since the collector epoch (pinned on first use).
pub fn now_nanos() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Merges one worker's span batch into the global collector. Called at
/// most a handful of times per sweep (once per worker), so one mutex is
/// the right tool; the per-chunk path never touches it.
pub fn record_spans(batch: Vec<HarnessSpan>) {
    if batch.is_empty() || !spans_enabled() {
        return;
    }
    if let Ok(mut spans) = SPANS.lock() {
        spans.extend(batch);
    }
}

/// Takes every collected span, sorted by content fields — (stage,
/// lo, worker, start) — so the order is reproducible across runs even
/// though the timestamps are not.
pub fn drain_spans() -> Vec<HarnessSpan> {
    let mut spans = SPANS
        .lock()
        .map(|mut guard| std::mem::take(&mut *guard))
        .unwrap_or_default();
    spans.sort_by(|a, b| {
        (&a.stage, a.lo, a.worker, a.start_nanos).cmp(&(&b.stage, b.lo, b.worker, b.start_nanos))
    });
    spans
}

/// Notes an arena lease: bumps the always-on counters and, when span
/// collection is enabled, records a timestamped event.
pub fn note_arena_lease(fresh: bool) {
    LEASES.fetch_add(1, Ordering::Relaxed);
    if fresh {
        FRESH.fetch_add(1, Ordering::Relaxed);
    }
    if spans_enabled() {
        record_arena_event(if fresh {
            ArenaEventKind::LeaseFresh
        } else {
            ArenaEventKind::LeasePooled
        });
    }
}

/// Notes an arena return: `kept` says whether the pool took it back.
pub fn note_arena_return(kept: bool) {
    RETURNS.fetch_add(1, Ordering::Relaxed);
    if !kept {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
    if spans_enabled() {
        record_arena_event(if kept {
            ArenaEventKind::ReturnPooled
        } else {
            ArenaEventKind::ReturnDropped
        });
    }
}

fn record_arena_event(kind: ArenaEventKind) {
    let event = ArenaEvent {
        kind,
        nanos: now_nanos(),
    };
    if let Ok(mut events) = EVENTS.lock() {
        events.push(event);
    }
}

/// Takes every timestamped arena event, sorted by time then kind.
pub fn drain_arena_events() -> Vec<ArenaEvent> {
    let mut events = EVENTS
        .lock()
        .map(|mut guard| std::mem::take(&mut *guard))
        .unwrap_or_default();
    events.sort_by_key(|e| (e.nanos, e.kind.label()));
    events
}

/// Reads the cumulative arena-pool counters.
pub fn arena_counters() -> ArenaCounters {
    ArenaCounters {
        leases: LEASES.load(Ordering::Relaxed),
        fresh: FRESH.load(Ordering::Relaxed),
        returns: RETURNS.load(Ordering::Relaxed),
        dropped: DROPPED.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(stage: &str, worker: u32, lo: u32) -> HarnessSpan {
        HarnessSpan {
            worker,
            stage: stage.to_string(),
            lo,
            hi: lo + 1,
            queue_depth: 0,
            start_nanos: 1,
            end_nanos: 2,
        }
    }

    // Span state is process-global, so one test function owns the whole
    // enable → record → drain lifecycle (mirrors the heartbeat tests).
    #[test]
    fn spans_are_off_by_default_then_collected_and_sorted() {
        assert!(!spans_enabled());
        record_spans(vec![span("dropped", 0, 0)]);
        assert!(drain_spans().is_empty(), "disabled collector drops spans");

        let before = arena_counters();
        note_arena_lease(true);
        note_arena_lease(false);
        note_arena_return(true);
        note_arena_return(false);
        let delta = arena_counters().delta(&before);
        assert_eq!(delta.leases, 2);
        assert_eq!(delta.fresh, 1);
        assert_eq!(delta.returns, 2);
        assert_eq!(delta.dropped, 1);
        assert!(
            drain_arena_events().is_empty(),
            "no timestamped events while disabled"
        );

        enable_spans();
        assert!(spans_enabled());
        enable_spans(); // idempotent
        record_spans(vec![span("b", 1, 4), span("a", 2, 8), span("a", 0, 2)]);
        record_spans(vec![span("a", 1, 2)]);
        let drained = drain_spans();
        let keys: Vec<(String, u32, u32)> = drained
            .iter()
            .map(|s| (s.stage.clone(), s.lo, s.worker))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("a".to_string(), 2, 0),
                ("a".to_string(), 2, 1),
                ("a".to_string(), 8, 2),
                ("b".to_string(), 4, 1),
            ]
        );
        assert!(drain_spans().is_empty(), "drain empties the collector");

        note_arena_lease(true);
        note_arena_return(true);
        let events = drain_arena_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, ArenaEventKind::LeaseFresh);
        assert_eq!(events[1].kind, ArenaEventKind::ReturnPooled);
        assert!(events[0].nanos <= events[1].nanos);
        assert!(now_nanos() >= events[1].nanos);
    }
}
