//! A dependency-free counting wrapper around the system allocator.
//!
//! Binaries (and dedicated test binaries) opt in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: fua_obs::CountingAlloc = fua_obs::CountingAlloc;
//! ```
//!
//! after which [`alloc_snapshot`] deltas measure exactly how many heap
//! allocations (and bytes) a region of code performed — the primitive
//! behind the zero-allocation steady-state gate and the allocs-per-phase
//! metrics in `fua harness-report`. When the wrapper is not installed
//! the counters simply stay at zero and
//! [`counting_allocator_active`] reports `false`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// A [`GlobalAlloc`] that forwards to [`System`] and counts every
/// allocation, reallocation and free on relaxed process-global atomics.
///
/// The counting adds two relaxed `fetch_add`s per heap call — noise
/// next to the allocator itself — and changes no allocation behaviour,
/// so a binary with the wrapper installed computes byte-identical
/// results to one without.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ACTIVE.store(true, Ordering::Relaxed);
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ACTIVE.store(true, Ordering::Relaxed);
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is one allocation event; only the growth counts as
        // new bytes, so `bytes` tracks gross requested growth.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREES.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

/// Whether [`CountingAlloc`] is installed as the global allocator in
/// this process (detected by the first counted allocation; any Rust
/// program allocates long before measurement code runs).
pub fn counting_allocator_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// A point-in-time reading of the process-wide allocation counters.
///
/// Two snapshots bracket a region; [`AllocSnapshot::delta`] is the
/// region's heap traffic. With [`CountingAlloc`] not installed every
/// field is zero and deltas are zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events (alloc + alloc_zeroed + realloc) so far.
    pub allocs: u64,
    /// Bytes requested by those events (reallocs count growth only).
    pub bytes: u64,
    /// Free events so far.
    pub frees: u64,
}

impl AllocSnapshot {
    /// The allocation traffic between `earlier` and `self`.
    pub fn delta(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
            frees: self.frees.wrapping_sub(earlier.frees),
        }
    }
}

/// Reads the current process-wide allocation counters.
pub fn alloc_snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_wrapper_counts_without_being_installed() {
        // These tests run without the wrapper installed globally, so we
        // exercise the impl directly: counters must move and the memory
        // must be usable.
        let layout = Layout::from_size_align(64, 8).unwrap();
        let before = alloc_snapshot();
        unsafe {
            let p = CountingAlloc.alloc(layout);
            assert!(!p.is_null());
            p.write_bytes(0xAB, 64);
            let p = CountingAlloc.realloc(p, layout, 128);
            assert!(!p.is_null());
            CountingAlloc.dealloc(p, Layout::from_size_align(128, 8).unwrap());
        }
        let delta = alloc_snapshot().delta(&before);
        assert_eq!(delta.allocs, 2, "alloc + realloc");
        assert_eq!(delta.frees, 1);
        assert_eq!(delta.bytes, 64 + 64, "64 fresh + 64 growth");
        assert!(counting_allocator_active());
    }

    #[test]
    fn snapshot_delta_is_fieldwise() {
        let a = AllocSnapshot {
            allocs: 10,
            bytes: 100,
            frees: 4,
        };
        let b = AllocSnapshot {
            allocs: 13,
            bytes: 164,
            frees: 9,
        };
        assert_eq!(
            b.delta(&a),
            AllocSnapshot {
                allocs: 3,
                bytes: 64,
                frees: 5
            }
        );
    }
}
