//! Gate-count and logic-depth estimation.

use std::collections::HashSet;

use fua_steer::LutTable;

use crate::{minimize, Implicant, Sop, TruthTable};

/// A technology-independent cost estimate: 2-to-`fanin`-input simple
/// gates (AND/OR/NOT), shared inverters and shared product terms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateEstimate {
    /// Total simple gates.
    pub gates: u32,
    /// Logic depth in gate levels.
    pub levels: u32,
    /// Distinct product terms across all outputs.
    pub product_terms: u32,
    /// Total literals across the distinct product terms.
    pub literals: u32,
}

fn tree_gates(leaves: u32, fanin: u32) -> u32 {
    if leaves <= 1 {
        0
    } else {
        // An n-leaf tree of f-input gates needs ceil((n-1)/(f-1)) nodes.
        (leaves - 1).div_ceil(fanin - 1)
    }
}

fn tree_levels(leaves: u32, fanin: u32) -> u32 {
    if leaves <= 1 {
        0
    } else {
        let mut levels = 0;
        let mut n = leaves;
        while n > 1 {
            n = n.div_ceil(fanin);
            levels += 1;
        }
        levels
    }
}

/// Costs a multi-output two-level network with fan-in-`fanin` gates:
/// shared input inverters, product terms deduplicated across outputs,
/// AND trees per term, OR trees per output.
///
/// # Panics
///
/// Panics if `fanin < 2`.
pub fn estimate_network(sops: &[Sop], fanin: u32) -> GateEstimate {
    assert!(fanin >= 2, "gates need at least two inputs");

    // Shared inverters: each input complemented anywhere costs one NOT.
    let mut complemented: u16 = 0;
    // Shared product terms.
    let mut terms: HashSet<Implicant> = HashSet::new();
    for sop in sops {
        for t in &sop.terms {
            complemented |= t.complemented_inputs();
            if t.literals() >= 1 {
                terms.insert(*t);
            }
        }
    }

    let inverters = complemented.count_ones();
    let mut gates = inverters;
    let mut literals = 0;
    let mut max_and_levels = 0;
    for t in &terms {
        let k = t.literals();
        literals += k;
        gates += tree_gates(k, fanin);
        max_and_levels = max_and_levels.max(tree_levels(k, fanin));
    }

    let mut max_or_levels = 0;
    for sop in sops {
        let t = sop.terms.len() as u32;
        gates += tree_gates(t, fanin);
        max_or_levels = max_or_levels.max(tree_levels(t, fanin));
    }

    let levels = (inverters > 0) as u32 + max_and_levels + max_or_levels;
    GateEstimate {
        gates,
        levels,
        product_terms: terms.len() as u32,
        literals,
    }
}

/// Costs the complete routing-control logic of Section 5 for a machine
/// with `rs_entries` reservation-station entries: the minimised LUT plus
/// the information-bit forwarding network that selects the vector bits
/// from the first ready entries.
///
/// The forwarding model: each of the LUT's input bits is driven by a
/// priority-select over the reservation station — a chain of 2:1 muxes
/// (3 simple gates each) across `rs_entries` candidates, with depth
/// logarithmic in the entry count. This reproduces the paper's scaling
/// (more entries → more gates and more levels) without claiming
/// gate-exact equivalence to their unpublished netlist.
pub fn routing_cost(lut: &LutTable, rs_entries: u32, fanin: u32) -> GateEstimate {
    let tt = TruthTable::from_lut(lut);
    let sops: Vec<Sop> = (0..tt.outputs()).map(|o| minimize(&tt, o)).collect();
    let core = estimate_network(&sops, fanin);

    let vector_bits = lut.vector_bits() as u32;
    // One (rs_entries:1) priority mux per vector bit: rs_entries-1 2:1
    // muxes of 3 gates, log2(rs_entries) levels deep.
    let mux_gates = vector_bits * 3 * rs_entries.saturating_sub(1) / 2;
    let mux_levels = 32 - rs_entries.max(2).leading_zeros() - 1;

    GateEstimate {
        gates: core.gates + mux_gates,
        levels: core.levels + mux_levels,
        product_terms: core.product_terms,
        literals: core.literals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_stats::CaseProfile;
    use fua_steer::{LutBuilder, PAPER_FPAU_OCCUPANCY, PAPER_IALU_OCCUPANCY};

    #[test]
    fn tree_helpers_match_hand_counts() {
        assert_eq!(tree_gates(1, 4), 0);
        assert_eq!(tree_gates(4, 4), 1);
        assert_eq!(tree_gates(5, 4), 2);
        assert_eq!(tree_gates(8, 2), 7);
        assert_eq!(tree_levels(4, 4), 1);
        assert_eq!(tree_levels(5, 4), 2);
        assert_eq!(tree_levels(8, 2), 3);
    }

    #[test]
    fn shared_terms_are_counted_once() {
        let t = Implicant {
            value: 0b01,
            mask: 0b11,
        };
        let a = Sop {
            terms: vec![t],
            inputs: 2,
        };
        let b = Sop {
            terms: vec![t],
            inputs: 2,
        };
        let est = estimate_network(&[a, b], 4);
        assert_eq!(est.product_terms, 1);
    }

    #[test]
    fn paper_scale_gate_counts() {
        // The paper: 4-bit LUT, 8 RS entries → 58 gates / 6 levels; 32
        // entries → 130 gates / 8 levels. Our independent estimate should
        // land in the same regime (tens of gates, < 10 levels) and scale
        // the same way.
        let lut = LutBuilder::new(CaseProfile::paper_ialu(), 32)
            .occupancy(&PAPER_IALU_OCCUPANCY)
            .build(2);
        let small = routing_cost(&lut, 8, 4);
        let large = routing_cost(&lut, 32, 4);
        assert!(
            (20..=120).contains(&small.gates),
            "8-entry estimate out of regime: {small:?}"
        );
        assert!((4..=10).contains(&small.levels), "{small:?}");
        assert!(large.gates > small.gates);
        assert!(large.levels > small.levels);
        assert!(
            (80..=260).contains(&large.gates),
            "32-entry estimate out of regime: {large:?}"
        );
    }

    #[test]
    fn bigger_luts_cost_more() {
        let build = |slots| {
            LutBuilder::new(CaseProfile::paper_fpau(), 52)
                .occupancy(&PAPER_FPAU_OCCUPANCY)
                .build(slots)
        };
        let two = routing_cost(&build(1), 8, 4);
        let eight = routing_cost(&build(4), 8, 4);
        assert!(eight.gates > two.gates);
    }

    #[test]
    fn minimised_lut_still_computes_the_table() {
        let lut = LutBuilder::new(CaseProfile::paper_ialu(), 32).build(2);
        let tt = TruthTable::from_lut(&lut);
        for o in 0..tt.outputs() {
            let sop = minimize(&tt, o);
            for m in 0..(1u16 << tt.inputs()) {
                assert_eq!(sop.eval(m), tt.output(m, o));
            }
        }
    }
}
