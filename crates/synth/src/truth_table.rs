//! Multi-output truth tables.

use fua_steer::LutTable;

/// A complete multi-output truth table over up to 16 inputs.
///
/// # Examples
///
/// ```
/// use fua_synth::TruthTable;
///
/// // A 2-input XOR.
/// let tt = TruthTable::from_fn(2, 1, |inputs, _| (inputs & 1) ^ ((inputs >> 1) & 1) == 1);
/// assert!(tt.output(0b01, 0));
/// assert!(!tt.output(0b11, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthTable {
    inputs: usize,
    outputs: usize,
    // bits[o][m] = value of output o at minterm m.
    bits: Vec<Vec<bool>>,
}

impl TruthTable {
    /// Builds a table by evaluating `f(minterm, output)`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > 16` or `outputs == 0`.
    pub fn from_fn(inputs: usize, outputs: usize, f: impl Fn(u16, usize) -> bool) -> Self {
        assert!(inputs <= 16, "too many inputs for exhaustive tables");
        assert!(outputs >= 1);
        let size = 1usize << inputs;
        let bits = (0..outputs)
            .map(|o| (0..size).map(|m| f(m as u16, o)).collect())
            .collect();
        TruthTable {
            inputs,
            outputs,
            bits,
        }
    }

    /// Expands a steering LUT: inputs are the vector bits, outputs are
    /// `slots × ceil(log2(modules))` module-index bits (slot-major, least
    /// significant bit first).
    pub fn from_lut(lut: &LutTable) -> Self {
        let mod_bits = usize::BITS as usize - (lut.modules() - 1).leading_zeros() as usize;
        let mod_bits = mod_bits.max(1);
        Self::from_fn(lut.vector_bits(), lut.slots() * mod_bits, |minterm, o| {
            let slot = o / mod_bits;
            let bit = o % mod_bits;
            let module = lut.entry(minterm as usize)[slot];
            (module >> bit) & 1 == 1
        })
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// The value of `output` at `minterm`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn output(&self, minterm: u16, output: usize) -> bool {
        self.bits[output][minterm as usize]
    }

    /// The minterms on which `output` is 1.
    pub fn minterms(&self, output: usize) -> Vec<u16> {
        self.bits[output]
            .iter()
            .enumerate()
            .filter_map(|(m, &v)| v.then_some(m as u16))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_stats::CaseProfile;
    use fua_steer::LutBuilder;

    #[test]
    fn lut_expansion_round_trips() {
        let lut = LutBuilder::new(CaseProfile::paper_ialu(), 32).build(2);
        let tt = TruthTable::from_lut(&lut);
        assert_eq!(tt.inputs(), 4);
        assert_eq!(tt.outputs(), 2 * 2);
        for vector in 0..16u16 {
            let entry = lut.entry(vector as usize);
            for (slot, &expected) in entry.iter().enumerate().take(2) {
                let mut module = 0u8;
                for bit in 0..2 {
                    module |= (tt.output(vector, slot * 2 + bit) as u8) << bit;
                }
                assert_eq!(module, expected);
            }
        }
    }

    #[test]
    fn minterms_enumerate_ones() {
        let tt = TruthTable::from_fn(3, 1, |m, _| m % 2 == 1);
        assert_eq!(tt.minterms(0), vec![1, 3, 5, 7]);
    }

    #[test]
    #[should_panic]
    fn too_many_inputs_rejected() {
        let _ = TruthTable::from_fn(17, 1, |_, _| false);
    }
}
