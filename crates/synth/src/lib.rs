//! Gate-level cost estimation for the steering LUT.
//!
//! Section 5 of the paper claims the 4-bit-LUT routing logic costs "58
//! small logic gates and 6 logic levels" on a machine with 8 reservation
//! station entries, and "130 gates and 8 levels" with 32 entries. This
//! crate rebuilds that estimate from first principles:
//!
//! 1. the built [`fua_steer::LutTable`] is expanded into a multi-output
//!    [`TruthTable`];
//! 2. each output is minimised to a sum-of-products with Quine–McCluskey
//!    ([`minimize`]);
//! 3. the network is costed with shared inverters, shared product terms
//!    and fan-in-limited gate trees ([`estimate_network`]);
//! 4. the information-bit forwarding network (priority-select over the
//!    reservation-station entries) is added ([`routing_cost`]).
//!
//! # Examples
//!
//! ```
//! use fua_stats::CaseProfile;
//! use fua_steer::LutBuilder;
//! use fua_synth::{routing_cost, TruthTable};
//!
//! let lut = LutBuilder::new(CaseProfile::paper_ialu(), 32).build(2);
//! let cost = routing_cost(&lut, 8, 4);
//! assert!(cost.gates > 0 && cost.levels > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod gates;
mod qm;
mod truth_table;

pub use gates::{estimate_network, routing_cost, GateEstimate};
pub use qm::{minimize, minimum_cover, prime_implicants, Implicant, Sop};
pub use truth_table::TruthTable;
