//! Quine–McCluskey two-level minimisation.

use std::collections::HashSet;

use crate::TruthTable;

/// A product term over the input variables: input `i` is fixed to
/// `value` bit `i` wherever `mask` bit `i` is 1, free otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Implicant {
    /// Fixed input values (only bits under `mask` are meaningful).
    pub value: u16,
    /// Which inputs the term tests.
    pub mask: u16,
}

impl Implicant {
    /// A minterm (all inputs fixed).
    pub fn minterm(value: u16, inputs: usize) -> Self {
        Implicant {
            value,
            mask: low_mask(inputs),
        }
    }

    /// Whether the term covers `minterm`.
    #[inline]
    pub fn covers(&self, minterm: u16) -> bool {
        (minterm ^ self.value) & self.mask == 0
    }

    /// Combines two terms differing in exactly one tested bit.
    pub fn combine(&self, other: &Implicant) -> Option<Implicant> {
        if self.mask != other.mask {
            return None;
        }
        let diff = (self.value ^ other.value) & self.mask;
        if diff.count_ones() != 1 {
            return None;
        }
        Some(Implicant {
            value: self.value & !diff,
            mask: self.mask & !diff,
        })
    }

    /// Number of literals (tested inputs) in the term.
    pub fn literals(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Number of *complemented* literals, given the term's value bits.
    pub fn complemented_inputs(&self) -> u16 {
        self.mask & !self.value
    }
}

fn low_mask(inputs: usize) -> u16 {
    if inputs >= 16 {
        u16::MAX
    } else {
        (1u16 << inputs) - 1
    }
}

/// A minimised sum-of-products for one output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sop {
    /// The product terms; empty for the constant-0 function, and a single
    /// all-free term (`mask == 0`) for the constant-1 function.
    pub terms: Vec<Implicant>,
    /// Number of input variables.
    pub inputs: usize,
}

/// Computes all prime implicants of the function whose ON-set is
/// `minterms` (the classic tabulation step).
pub fn prime_implicants(minterms: &[u16], inputs: usize) -> Vec<Implicant> {
    let mut current: HashSet<Implicant> = minterms
        .iter()
        .map(|&m| Implicant::minterm(m, inputs))
        .collect();
    let mut primes = Vec::new();
    while !current.is_empty() {
        let items: Vec<Implicant> = current.iter().copied().collect();
        let mut combined_flags = vec![false; items.len()];
        let mut next = HashSet::new();
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                if let Some(c) = items[i].combine(&items[j]) {
                    combined_flags[i] = true;
                    combined_flags[j] = true;
                    next.insert(c);
                }
            }
        }
        for (item, combined) in items.iter().zip(&combined_flags) {
            if !combined {
                primes.push(*item);
            }
        }
        current = next;
    }
    primes.sort_unstable();
    primes.dedup();
    primes
}

/// Selects a small cover of `minterms` from `primes`: essential primes
/// first, then a greedy most-coverage choice (optimal covers are
/// NP-hard; greedy is the standard engineering compromise and is exact on
/// every table in this workspace's tests).
pub fn minimum_cover(primes: &[Implicant], minterms: &[u16]) -> Vec<Implicant> {
    let mut uncovered: HashSet<u16> = minterms.iter().copied().collect();
    let mut cover = Vec::new();

    // Essential primes: sole cover of some minterm.
    for &m in minterms {
        let covering: Vec<&Implicant> = primes.iter().filter(|p| p.covers(m)).collect();
        if covering.len() == 1 && !cover.contains(covering[0]) {
            cover.push(*covering[0]);
        }
    }
    for p in &cover {
        uncovered.retain(|&m| !p.covers(m));
    }

    // Greedy for the rest.
    while !uncovered.is_empty() {
        let best = primes
            .iter()
            .filter(|p| !cover.contains(*p))
            .max_by_key(|p| {
                (
                    uncovered.iter().filter(|&&m| p.covers(m)).count(),
                    std::cmp::Reverse(p.literals()),
                )
            })
            .copied()
            .expect("primes cover every minterm");
        uncovered.retain(|&m| !best.covers(m));
        cover.push(best);
    }
    cover
}

/// Minimises one output of a truth table into a [`Sop`].
pub fn minimize(tt: &TruthTable, output: usize) -> Sop {
    let minterms = tt.minterms(output);
    let primes = prime_implicants(&minterms, tt.inputs());
    let terms = minimum_cover(&primes, &minterms);
    Sop {
        terms,
        inputs: tt.inputs(),
    }
}

impl Sop {
    /// Evaluates the SOP at a minterm (for verification).
    pub fn eval(&self, minterm: u16) -> bool {
        self.terms.iter().any(|t| t.covers(minterm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify(tt: &TruthTable, output: usize) {
        let sop = minimize(tt, output);
        for m in 0..(1u16 << tt.inputs()) {
            assert_eq!(
                sop.eval(m),
                tt.output(m, output),
                "mismatch at minterm {m:04b}"
            );
        }
    }

    #[test]
    fn xor_needs_two_terms() {
        let tt = TruthTable::from_fn(2, 1, |m, _| (m & 1) ^ ((m >> 1) & 1) == 1);
        let sop = minimize(&tt, 0);
        assert_eq!(sop.terms.len(), 2);
        verify(&tt, 0);
    }

    #[test]
    fn and_collapses_to_one_term() {
        let tt = TruthTable::from_fn(3, 1, |m, _| m == 0b111);
        let sop = minimize(&tt, 0);
        assert_eq!(sop.terms.len(), 1);
        assert_eq!(sop.terms[0].literals(), 3);
    }

    #[test]
    fn dominated_variables_are_eliminated() {
        // f = x0 (x1, x2 irrelevant).
        let tt = TruthTable::from_fn(3, 1, |m, _| m & 1 == 1);
        let sop = minimize(&tt, 0);
        assert_eq!(sop.terms.len(), 1);
        assert_eq!(sop.terms[0].literals(), 1);
        verify(&tt, 0);
    }

    #[test]
    fn constant_functions() {
        let zero = TruthTable::from_fn(2, 1, |_, _| false);
        assert!(minimize(&zero, 0).terms.is_empty());
        let one = TruthTable::from_fn(2, 1, |_, _| true);
        let sop = minimize(&one, 0);
        assert_eq!(sop.terms.len(), 1);
        assert_eq!(sop.terms[0].literals(), 0);
    }

    #[test]
    fn classic_textbook_example() {
        // f(a,b,c,d) with ON-set {4,8,10,11,12,15}: known 4-term minimum.
        let on = [4u16, 8, 10, 11, 12, 15];
        let tt = TruthTable::from_fn(4, 1, |m, _| on.contains(&m));
        let sop = minimize(&tt, 0);
        verify(&tt, 0);
        assert!(sop.terms.len() <= 4, "got {} terms", sop.terms.len());
    }

    #[test]
    fn every_output_of_a_random_table_verifies() {
        // Deterministic pseudo-random multi-output table.
        let tt = TruthTable::from_fn(5, 3, |m, o| {
            (m.wrapping_mul(2654435761u32 as u16) >> (o + 3)) & 1 == 1
        });
        for o in 0..3 {
            verify(&tt, o);
        }
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;

    /// The fundamental QM contract: for any function over up to 6
    /// inputs, the minimised SOP computes the same function, and every
    /// term is a prime implicant (no literal can be dropped). Sweeps a
    /// deterministic family of random truth tables (LCG-seeded, as the
    /// original property test did).
    #[test]
    fn minimised_sop_is_exact_and_prime() {
        for round in 0u64..48 {
            let inputs = 1 + (round % 6) as usize;
            let size = 1usize << inputs;
            let mut state = round.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut bits = Vec::with_capacity(size);
            for _ in 0..size {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                bits.push((state >> 40) & 1 == 1);
            }
            let tt = crate::TruthTable::from_fn(inputs, 1, |m, _| bits[m as usize]);
            let sop = minimize(&tt, 0);
            for m in 0..size as u16 {
                assert_eq!(sop.eval(m), tt.output(m, 0), "wrong at {m:b}");
            }
            // Primality: dropping any tested literal must break the cover
            // (the widened term would cover an OFF minterm).
            for term in &sop.terms {
                let mut literal_bits = term.mask;
                while literal_bits != 0 {
                    let bit = literal_bits & literal_bits.wrapping_neg();
                    literal_bits &= literal_bits - 1;
                    let widened = Implicant {
                        value: term.value & !bit,
                        mask: term.mask & !bit,
                    };
                    let covers_off =
                        (0..size as u16).any(|m| widened.covers(m) && !tt.output(m, 0));
                    assert!(
                        covers_off,
                        "term {term:?} is not prime: literal {bit:#b} is redundant"
                    );
                }
            }
        }
    }
}
