//! Per-run steering configuration.

use fua_isa::FuClass;
use fua_steer::{
    make_policy, FcfsPolicy, HardwareSwapRule, SteeringKind, SteeringPolicy, PAPER_FPAU_OCCUPANCY,
    PAPER_IALU_OCCUPANCY,
};
use fua_swap::MultiplierSwapRule;

/// The steering side of a simulation: one policy per duplicated FU class,
/// the optional static hardware swap rules, and the optional multiplier
/// swap rule.
///
/// # Examples
///
/// ```
/// use fua_sim::SteeringConfig;
/// use fua_steer::SteeringKind;
///
/// // The paper's recommended design point: 4-bit LUTs + hardware swap.
/// let cfg = SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true);
/// assert!(cfg.hw_swap_enabled());
/// ```
pub struct SteeringConfig {
    /// IALU steering policy.
    pub ialu: Box<dyn SteeringPolicy + Send>,
    /// FPAU steering policy.
    pub fpau: Box<dyn SteeringPolicy + Send>,
    /// Static hardware swap rule for the IALU (case 01 in the paper).
    pub ialu_swap: Option<HardwareSwapRule>,
    /// Static hardware swap rule for the FPAU (case 10 in the paper).
    pub fpau_swap: Option<HardwareSwapRule>,
    /// Multiplier swap rule for both multiplier classes.
    pub multiplier_swap: Option<MultiplierSwapRule>,
}

impl SteeringConfig {
    /// The unmodified baseline machine: FCFS everywhere, no swapping.
    pub fn original() -> Self {
        SteeringConfig {
            ialu: Box::new(FcfsPolicy::new()),
            fpau: Box::new(FcfsPolicy::new()),
            ialu_swap: None,
            fpau_swap: None,
            multiplier_swap: None,
        }
    }

    /// Builds a scheme the way the paper's evaluation does: the same
    /// steering kind on both duplicated FU types, LUTs parameterised by
    /// the paper's published Table-1/Table-2 statistics, and (optionally)
    /// the paper's hardware swap rules. Cost-based policies interpret
    /// `hardware_swap` as permission to swap per assignment.
    pub fn paper_scheme(kind: SteeringKind, hardware_swap: bool) -> Self {
        use fua_stats::CaseProfile;
        let ialu_profile = CaseProfile::paper_ialu();
        let fpau_profile = CaseProfile::paper_fpau();
        Self::from_profiles(kind, hardware_swap, &ialu_profile, &fpau_profile, 4, 4)
    }

    /// Builds a scheme from measured profiles (what the experiment layer
    /// does after its profiling pass), using the paper's Table-2 occupancy
    /// for LUT construction.
    pub fn from_profiles(
        kind: SteeringKind,
        hardware_swap: bool,
        ialu_profile: &fua_stats::CaseProfile,
        fpau_profile: &fua_stats::CaseProfile,
        ialu_modules: usize,
        fpau_modules: usize,
    ) -> Self {
        Self::from_profiles_with_occupancy(
            kind,
            hardware_swap,
            ialu_profile,
            fpau_profile,
            &PAPER_IALU_OCCUPANCY,
            &PAPER_FPAU_OCCUPANCY,
            ialu_modules,
            fpau_modules,
        )
    }

    /// Builds a scheme from measured profiles *and* measured occupancy
    /// distributions.
    #[allow(clippy::too_many_arguments)]
    pub fn from_profiles_with_occupancy(
        kind: SteeringKind,
        hardware_swap: bool,
        ialu_profile: &fua_stats::CaseProfile,
        fpau_profile: &fua_stats::CaseProfile,
        ialu_occupancy: &[f64],
        fpau_occupancy: &[f64],
        ialu_modules: usize,
        fpau_modules: usize,
    ) -> Self {
        let ialu = make_policy(
            kind,
            ialu_profile,
            ialu_occupancy,
            ialu_modules,
            32,
            hardware_swap,
        );
        let fpau = make_policy(
            kind,
            fpau_profile,
            fpau_occupancy,
            fpau_modules,
            fua_isa::FP_MANTISSA_BITS,
            hardware_swap,
        );
        let (ialu_swap, fpau_swap) = if hardware_swap {
            (
                Some(HardwareSwapRule::from_profile(ialu_profile)),
                Some(HardwareSwapRule::from_profile(fpau_profile)),
            )
        } else {
            (None, None)
        };
        SteeringConfig {
            ialu,
            fpau,
            ialu_swap,
            fpau_swap,
            multiplier_swap: None,
        }
    }

    /// Enables the multiplier swap rule.
    pub fn with_multiplier_swap(mut self, rule: MultiplierSwapRule) -> Self {
        self.multiplier_swap = Some(rule);
        self
    }

    /// Whether any static hardware swap rule is active.
    pub fn hw_swap_enabled(&self) -> bool {
        self.ialu_swap.is_some() || self.fpau_swap.is_some()
    }

    /// The swap rule for a duplicated class, if any.
    pub(crate) fn swap_rule(&self, class: FuClass) -> Option<&HardwareSwapRule> {
        match class {
            FuClass::IntAlu => self.ialu_swap.as_ref(),
            FuClass::FpAlu => self.fpau_swap.as_ref(),
            _ => None,
        }
    }

    /// The steering policy for a duplicated class.
    pub(crate) fn policy_mut(
        &mut self,
        class: FuClass,
    ) -> Option<&mut (dyn SteeringPolicy + Send)> {
        match class {
            FuClass::IntAlu => Some(self.ialu.as_mut()),
            FuClass::FpAlu => Some(self.fpau.as_mut()),
            _ => None,
        }
    }
}

impl std::fmt::Debug for SteeringConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SteeringConfig")
            .field("ialu", &self.ialu.name())
            .field("fpau", &self.fpau.name())
            .field("ialu_swap", &self.ialu_swap)
            .field("fpau_swap", &self.fpau_swap)
            .field("multiplier_swap", &self.multiplier_swap.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_has_no_swapping() {
        let cfg = SteeringConfig::original();
        assert!(!cfg.hw_swap_enabled());
        assert_eq!(cfg.ialu.name(), "Original");
    }

    #[test]
    fn paper_scheme_derives_the_paper_swap_cases() {
        use fua_isa::Case;
        let cfg = SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true);
        assert_eq!(cfg.ialu_swap.expect("enabled").case(), Case::C01);
        assert_eq!(cfg.fpau_swap.expect("enabled").case(), Case::C10);
        assert_eq!(cfg.ialu.name(), "4-bit LUT");
    }
}
