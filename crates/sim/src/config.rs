//! Machine configuration.

use fua_isa::{FuClass, Opcode};

use crate::CacheConfig;

/// The modelled machine, defaulting to the paper's SimpleScalar
/// configuration: 4-wide, 4 IALUs, 1 integer multiplier/divider, 4 FPAUs,
/// 1 FP multiplier/divider.
///
/// # Examples
///
/// ```
/// use fua_isa::FuClass;
/// use fua_sim::MachineConfig;
///
/// let m = MachineConfig::default();
/// assert_eq!(m.modules(FuClass::IntAlu), 4);
/// assert_eq!(m.fetch_width, 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Instructions fetched/dispatched per cycle.
    pub fetch_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries (the in-flight window).
    pub rob_size: usize,
    /// Reservation-station entries per FU type.
    pub rs_entries: usize,
    /// Module count per FU class, indexed by [`FuClass::index`].
    pub fu_counts: [usize; 4],
    /// Memory ports: at most this many loads/stores issue per cycle
    /// (SimpleScalar's default machine has 2).
    pub mem_ports: usize,
    /// Data-cache geometry and latencies.
    pub cache: CacheConfig,
    /// Extra penalty cycles after a branch misprediction (on top of
    /// waiting for the branch to execute).
    pub mispredict_penalty: u64,
    /// Issue strictly in program order (VLIW-style): an instruction may
    /// only issue when every older instruction has issued. The paper
    /// conjectures its techniques partially apply to VLIWs; this switch
    /// lets the extension bench test that.
    pub in_order_issue: bool,
}

impl MachineConfig {
    /// The paper's default machine.
    pub fn paper_default() -> Self {
        MachineConfig {
            fetch_width: 4,
            commit_width: 4,
            rob_size: 64,
            rs_entries: 8,
            fu_counts: [4, 1, 4, 1],
            mem_ports: 2,
            cache: CacheConfig::default(),
            mispredict_penalty: 2,
            in_order_issue: false,
        }
    }

    /// An in-order (VLIW-style) variant of the paper machine, for the
    /// in-order-issue extension study.
    pub fn in_order() -> Self {
        MachineConfig {
            in_order_issue: true,
            ..Self::paper_default()
        }
    }

    /// Returns the config with a different IALU/FPAU duplication (used by
    /// the module-count ablation).
    pub fn with_duplicated_modules(mut self, modules: usize) -> Self {
        self.fu_counts[FuClass::IntAlu.index()] = modules;
        self.fu_counts[FuClass::FpAlu.index()] = modules;
        self
    }

    /// Module count for an FU class.
    pub fn modules(&self, class: FuClass) -> usize {
        self.fu_counts[class.index()]
    }

    /// Total issue slots per cycle across every FU class — the sum of
    /// [`fu_counts`](MachineConfig::fu_counts) (10 on the paper machine).
    /// The cycle-attribution partition denominator: every cycle offers
    /// exactly `issue_width` slots, and the stall taxonomy accounts for
    /// each of them exactly once.
    pub fn issue_width(&self) -> usize {
        self.fu_counts.iter().sum()
    }

    /// Execution latency of an opcode in cycles, excluding cache misses.
    /// Latencies follow SimpleScalar's defaults: single-cycle integer
    /// ALU, 3-cycle multiply, 20-cycle divide, 2-cycle FP add, 4-cycle FP
    /// multiply, 12-cycle FP divide.
    pub fn latency(&self, op: Opcode) -> u64 {
        use Opcode::*;
        match op {
            Mul => 3,
            Div | Rem => 20,
            FMul => 4,
            FDiv => 12,
            FAdd | FSub | FCmpLt | FCmpLe | FCmpGt | FCmpGe | FCmpEq | FCmpNe | CvtIf | CvtFi
            | FNeg | FAbs | FMov => 2,
            _ => 1,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any width or count is zero.
    pub fn validate(&self) {
        assert!(self.fetch_width >= 1);
        assert!(self.commit_width >= 1);
        assert!(self.rob_size >= self.fetch_width);
        assert!(self.rs_entries >= 1);
        assert!(self.fu_counts.iter().all(|&c| c >= 1));
        assert!(self.mem_ports >= 1);
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_the_evaluation_machine() {
        let m = MachineConfig::paper_default();
        m.validate();
        assert_eq!(m.modules(FuClass::IntAlu), 4);
        assert_eq!(m.modules(FuClass::IntMul), 1);
        assert_eq!(m.modules(FuClass::FpAlu), 4);
        assert_eq!(m.modules(FuClass::FpMul), 1);
        assert_eq!(m.issue_width(), 10, "4+1+4+1 issue slots per cycle");
    }

    #[test]
    fn issue_width_tracks_duplication() {
        let m = MachineConfig::default().with_duplicated_modules(2);
        assert_eq!(m.issue_width(), 6);
    }

    #[test]
    fn latencies_order_sensibly() {
        let m = MachineConfig::default();
        assert!(m.latency(Opcode::Add) < m.latency(Opcode::Mul));
        assert!(m.latency(Opcode::Mul) < m.latency(Opcode::Div));
        assert!(m.latency(Opcode::FAdd) < m.latency(Opcode::FDiv));
    }

    #[test]
    fn module_count_ablation_helper() {
        let m = MachineConfig::default().with_duplicated_modules(2);
        assert_eq!(m.modules(FuClass::IntAlu), 2);
        assert_eq!(m.modules(FuClass::FpAlu), 2);
        assert_eq!(m.modules(FuClass::IntMul), 1);
    }
}
