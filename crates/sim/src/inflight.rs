//! Arena-allocated struct-of-arrays storage for in-flight instructions.
//!
//! The hot loop's data layout (see `docs/PERFORMANCE.md`): instead of a
//! `VecDeque` of per-instruction structs, every field the issue stage
//! touches lives in its own dense array, indexed by a power-of-two ring
//! slot (`serial & mask`). Scheduling state is two age-indexed bitmasks
//! (`waiting`/`ready`) scanned with `trailing_zeros`, wakeup is a
//! per-producer consumer list drained by a completion calendar wheel, and
//! the whole arena is leased from a thread-local pool so repeated runs
//! (bench suites, sweeps) never re-allocate it.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

use fua_isa::{FuClass, Opcode, Word};
use fua_vm::{FuOp, MemAccess};

use crate::MachineConfig;

/// Sentinel for "no node" in the consumer linked lists.
pub(crate) const NO_NODE: u32 = u32::MAX;

/// Upper bound on opcode latency plus margin; the calendar wheel is sized
/// to cover `MAX_OP_LATENCY + miss_latency` cycles of look-ahead.
const MAX_OP_LATENCY: u64 = 20;

/// Struct-of-arrays storage for the reorder buffer, reservation stations
/// and wakeup network. All arrays are sized to the ring capacity (the
/// ROB size rounded up to a power of two) and addressed by
/// `slot = serial & mask`, so an instruction's row never moves while it
/// is in flight.
pub(crate) struct InflightArena {
    /// Ring capacity (power of two, >= rob_size).
    pub capacity: usize,
    /// `capacity - 1`, for slot arithmetic on serials.
    pub mask: u64,
    /// Number of 64-bit words in each age-indexed bitmask.
    pub words: usize,

    // --- per-slot pre-decoded instruction fields ---
    /// Program-order serial occupying the slot.
    pub serial: Vec<u64>,
    /// Opcode (drives latency and the multiplier swap check).
    pub opcode: Vec<Opcode>,
    /// Static instruction index (stall/energy attribution).
    pub static_idx: Vec<u32>,
    /// The FU operation, as dispatched (pre-swap).
    pub fu: Vec<FuOp>,
    /// Pre-decoded 2-bit case index of `fu` (`op1_bit << 1 | op2_bit`).
    pub case_bits: Vec<u8>,
    /// Memory access, meaningful only when `has_mem` is set.
    pub mem: Vec<MemAccess>,
    /// Whether the slot's instruction touches memory.
    pub has_mem: Vec<bool>,
    /// Completion cycle (valid once issued, or for no-FU instructions).
    pub done_cycle: Vec<u64>,
    /// Outstanding operand producers (0 = ready to issue).
    pub pending: Vec<u8>,

    // --- wakeup network ---
    /// Head of the slot's consumer list (`NO_NODE` when empty).
    pub first_consumer: Vec<u32>,
    /// Next pointers; node id = `consumer_slot * 2 + operand_index`.
    pub next_consumer: Vec<u32>,

    // --- age-indexed scheduling bitmasks (bit 0 = window head) ---
    /// Dispatched FU instructions not yet issued.
    pub waiting: Vec<u64>,
    /// Subset of `waiting` with all operands available.
    pub ready: Vec<u64>,

    // --- completion calendar wheel ---
    /// Slots completing at cycle `c` live in bucket `c & wheel_mask`.
    pub wheel: Vec<Vec<u32>>,
    /// `wheel.len() - 1` (wheel length is a power of two).
    pub wheel_mask: u64,

    // --- issue-stage scratch (reused every cycle) ---
    /// Selected age offsets per FU class.
    pub selected: [Vec<u32>; 4],
    /// FU operations of the group being issued (post rule-swaps).
    pub ops_scratch: Vec<FuOp>,
    /// Case bits tracking `ops_scratch` through swaps.
    pub bits_scratch: Vec<u8>,
    /// Steering decisions for the group being issued.
    pub choices_scratch: Vec<fua_steer::ModuleChoice>,
}

fn dummy_fu() -> FuOp {
    FuOp {
        class: FuClass::IntAlu,
        op1: Word::int(0),
        op2: Word::int(0),
        commutative: false,
    }
}

const DUMMY_MEM: MemAccess = MemAccess {
    addr: 0,
    is_load: false,
    width: 0,
};

impl InflightArena {
    fn new() -> Self {
        InflightArena {
            capacity: 0,
            mask: 0,
            words: 0,
            serial: Vec::new(),
            opcode: Vec::new(),
            static_idx: Vec::new(),
            fu: Vec::new(),
            case_bits: Vec::new(),
            mem: Vec::new(),
            has_mem: Vec::new(),
            done_cycle: Vec::new(),
            pending: Vec::new(),
            first_consumer: Vec::new(),
            next_consumer: Vec::new(),
            waiting: Vec::new(),
            ready: Vec::new(),
            wheel: Vec::new(),
            wheel_mask: 0,
            selected: Default::default(),
            ops_scratch: Vec::new(),
            bits_scratch: Vec::new(),
            choices_scratch: Vec::new(),
        }
    }

    /// Resizes (if needed) and clears the arena for a fresh run under
    /// `config`. Per-slot arrays need no clearing: their contents are
    /// only read for slots inside the live window, and dispatch fully
    /// initialises a slot before it enters the window.
    fn reset(&mut self, config: &MachineConfig) {
        let capacity = config.rob_size.next_power_of_two();
        if capacity > self.capacity {
            self.capacity = capacity;
            self.mask = capacity as u64 - 1;
            self.words = capacity.div_ceil(64);
            self.serial.resize(capacity, 0);
            self.opcode.resize(capacity, Opcode::Halt);
            self.static_idx.resize(capacity, 0);
            self.fu.resize(capacity, dummy_fu());
            self.case_bits.resize(capacity, 0);
            self.mem.resize(capacity, DUMMY_MEM);
            self.has_mem.resize(capacity, false);
            self.done_cycle.resize(capacity, 0);
            self.pending.resize(capacity, 0);
            self.first_consumer.resize(capacity, NO_NODE);
            self.next_consumer.resize(capacity * 2, NO_NODE);
            self.waiting.resize(self.words, 0);
            self.ready.resize(self.words, 0);
        }
        // Wheel look-ahead must cover the longest completion delay:
        // opcode latency plus a cache miss (loads), plus slack for the
        // no-FU "next cycle" completions.
        let horizon = (MAX_OP_LATENCY + config.cache.miss_latency + 2).next_power_of_two();
        if horizon as usize > self.wheel.len() {
            self.wheel.resize(horizon as usize, Vec::new());
            self.wheel_mask = horizon - 1;
        }
        for bucket in &mut self.wheel {
            bucket.clear();
        }
        for word in self.waiting.iter_mut().chain(self.ready.iter_mut()) {
            *word = 0;
        }
        for sel in &mut self.selected {
            sel.clear();
        }
        self.ops_scratch.clear();
        self.bits_scratch.clear();
        self.choices_scratch.clear();
    }

    /// Leases an arena from the thread-local pool (or allocates a fresh
    /// one), reset for a run under `config`. Dropping the lease returns
    /// the arena — and every buffer it grew — to the pool.
    pub(crate) fn lease(config: &MachineConfig) -> ArenaLease {
        let pooled = POOL.with(|p| p.borrow_mut().pop());
        fua_obs::note_arena_lease(pooled.is_none());
        let mut arena = pooled.unwrap_or_else(InflightArena::new);
        arena.reset(config);
        ArenaLease(Some(arena))
    }
}

thread_local! {
    /// Pool of retired arenas, reused across runs on the same thread so
    /// bench suites and sweeps allocate in-flight state exactly once.
    static POOL: RefCell<Vec<InflightArena>> = const { RefCell::new(Vec::new()) };
}

/// How many idle arenas a thread keeps; beyond this, drops free memory.
const POOL_CAP: usize = 4;

/// An exclusive lease on a pooled [`InflightArena`]; derefs to the arena
/// and returns it to the thread-local pool on drop.
pub(crate) struct ArenaLease(Option<InflightArena>);

impl Deref for ArenaLease {
    type Target = InflightArena;

    #[inline]
    fn deref(&self) -> &InflightArena {
        self.0.as_ref().expect("lease holds an arena until dropped")
    }
}

impl DerefMut for ArenaLease {
    #[inline]
    fn deref_mut(&mut self) -> &mut InflightArena {
        self.0.as_mut().expect("lease holds an arena until dropped")
    }
}

impl Drop for ArenaLease {
    fn drop(&mut self) {
        if let Some(arena) = self.0.take() {
            let kept = POOL.with(|p| {
                let mut pool = p.borrow_mut();
                if pool.len() < POOL_CAP {
                    pool.push(arena);
                    true
                } else {
                    false
                }
            });
            fua_obs::note_arena_return(kept);
        }
    }
}

// --- age-indexed bitmask primitives ---

/// Tests bit `i` of an age-indexed mask.
#[inline]
pub(crate) fn bit_get(bits: &[u64], i: usize) -> bool {
    bits[i / 64] & (1u64 << (i % 64)) != 0
}

/// Sets bit `i` of an age-indexed mask.
#[inline]
pub(crate) fn bit_set(bits: &mut [u64], i: usize) {
    bits[i / 64] |= 1u64 << (i % 64);
}

/// Clears bit `i` of an age-indexed mask.
#[inline]
pub(crate) fn bit_clear(bits: &mut [u64], i: usize) {
    bits[i / 64] &= !(1u64 << (i % 64));
}

/// Shifts the whole mask right by `k` bits (ages every entry by `k`
/// positions after `k` instructions commit from the window head).
pub(crate) fn bit_shift_right(bits: &mut [u64], k: usize) {
    let words = bits.len();
    let word_shift = k / 64;
    let bit_shift = k % 64;
    if word_shift >= words {
        bits.fill(0);
        return;
    }
    if bit_shift == 0 {
        for i in 0..words - word_shift {
            bits[i] = bits[i + word_shift];
        }
    } else {
        for i in 0..words - word_shift {
            let lo = bits[i + word_shift] >> bit_shift;
            let hi = if i + word_shift + 1 < words {
                bits[i + word_shift + 1] << (64 - bit_shift)
            } else {
                0
            };
            bits[i] = lo | hi;
        }
    }
    for w in &mut bits[words - word_shift..] {
        *w = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_ops_round_trip() {
        let mut m = vec![0u64; 2];
        for i in [0, 1, 63, 64, 65, 127] {
            assert!(!bit_get(&m, i));
            bit_set(&mut m, i);
            assert!(bit_get(&m, i));
        }
        bit_clear(&mut m, 64);
        assert!(!bit_get(&m, 64));
        assert!(bit_get(&m, 65));
    }

    #[test]
    fn shift_right_matches_u128_model() {
        // Model a 128-bit mask with u128 and compare every shift amount.
        let pattern: u128 = 0xDEAD_BEEF_0123_4567_89AB_CDEF_FEDC_BA98;
        for k in 0..=130usize {
            let mut m = vec![pattern as u64, (pattern >> 64) as u64];
            bit_shift_right(&mut m, k);
            let expect = if k >= 128 { 0 } else { pattern >> k };
            assert_eq!(m[0], expect as u64, "low word, k={k}");
            assert_eq!(m[1], (expect >> 64) as u64, "high word, k={k}");
        }
    }

    #[test]
    fn arena_pool_reuses_allocations() {
        let config = MachineConfig::paper_default();
        let ptr = {
            let lease = InflightArena::lease(&config);
            lease.serial.as_ptr() as usize
        };
        // The next lease on this thread gets the same backing buffers.
        let lease = InflightArena::lease(&config);
        assert_eq!(lease.serial.as_ptr() as usize, ptr);
        assert_eq!(lease.capacity, 64);
        assert!(lease.wheel.len() >= 40, "wheel covers worst-case latency");
    }

    #[test]
    fn pool_traffic_is_counted() {
        let config = MachineConfig::paper_default();
        let before = fua_obs::arena_counters();
        drop(InflightArena::lease(&config));
        // Other tests lease concurrently, so check deltas as lower
        // bounds only.
        let delta = fua_obs::arena_counters().delta(&before);
        assert!(delta.leases >= 1, "lease counted");
        assert!(delta.returns >= 1, "return counted");
    }

    #[test]
    fn reset_clears_scheduling_state_but_keeps_capacity() {
        let config = MachineConfig::paper_default();
        let mut lease = InflightArena::lease(&config);
        bit_set(&mut lease.waiting, 5);
        lease.wheel[3].push(7);
        let cap = lease.capacity;
        lease.reset(&config);
        assert_eq!(lease.capacity, cap);
        assert!(!bit_get(&lease.waiting, 5));
        assert!(lease.wheel[3].is_empty());
    }
}
