//! Trace-driven out-of-order superscalar timing and power model.
//!
//! This crate rebuilds the pipeline substrate the paper took from
//! SimpleScalar's `sim-outorder`: a 4-wide machine with per-FU-type
//! reservation stations, a reorder buffer, a bimodal branch predictor and
//! a direct-mapped data cache. Functional execution comes from
//! [`fua_vm`]; this crate decides *when* instructions issue, *which
//! module* each one issues to (via a [`fua_steer::SteeringPolicy`]), and
//! charges switched input bits to a [`fua_power::EnergyLedger`].
//!
//! The observable outputs — per-cycle FU occupancy (Table 2), operand bit
//! patterns (Tables 1/3) and switched capacitance per scheme (Figure 4) —
//! are exactly the quantities the paper reports.
//!
//! # Examples
//!
//! ```
//! use fua_isa::{IntReg, ProgramBuilder};
//! use fua_sim::{MachineConfig, Simulator, SteeringConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let r1 = IntReg::new(1);
//! let mut b = ProgramBuilder::new();
//! let top = b.new_label();
//! b.li(r1, 100);
//! b.bind(top);
//! b.addi(r1, r1, -1);
//! b.bgtz(r1, top);
//! b.halt();
//! let program = b.build()?;
//!
//! let mut sim = Simulator::new(MachineConfig::default(), SteeringConfig::original());
//! let result = sim.run_program(&program, 10_000)?;
//! assert!(result.halted);
//! assert!(result.cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cache;
mod config;
mod inflight;
mod pipeline;
mod predictor;
mod profiler;
mod reference;
mod result;
mod steering;

pub use cache::{CacheConfig, DataCache};
pub use config::MachineConfig;
pub use pipeline::Simulator;
pub use predictor::BimodalPredictor;
pub use profiler::{NullProfiler, PhaseProfiler, PhaseTimers, SimPhase};
pub use reference::ReferenceSimulator;
pub use result::{BranchStats, CacheStats, SimResult, SwapStats};
pub use steering::SteeringConfig;
