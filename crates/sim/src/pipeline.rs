//! The cycle-driven out-of-order engine.
//!
//! The in-flight machinery is laid out for the machine, not the borrow
//! checker: pre-decoded struct-of-arrays ROB/reservation-station state in
//! an [`InflightArena`] ring, dense `waiting`/`ready` bitmasks scanned
//! with `trailing_zeros`, wakeup via per-producer consumer lists drained
//! by a completion calendar wheel, and branchless case computation from
//! pre-decoded information bits. The arena is leased from a thread-local
//! pool, so sweeps and bench suites reuse one allocation across runs.
//! `docs/PERFORMANCE.md` documents the layout and the measured effect;
//! DESIGN.md §13 gives the soundness argument. The pre-rewrite engine
//! survives as [`crate::ReferenceSimulator`], and the
//! `hot_loop_equivalence` integration test pins this engine against it
//! bit-for-bit.

use std::time::Instant;

use fua_isa::{Case, FuClass, Opcode, Program};
use fua_power::booth::BoothModel;
use fua_power::{EnergyLedger, ModulePorts};
use fua_stats::{BitPatternProfiler, OccupancyProfiler};
use fua_trace::{NullSink, Stage, StallReason, SwapKind, TraceEvent, TraceSink};
use fua_vm::{DynOp, Vm, VmError};

use crate::inflight::{
    bit_clear, bit_get, bit_set, bit_shift_right, ArenaLease, InflightArena, NO_NODE,
};
use crate::{
    BimodalPredictor, BranchStats, CacheStats, DataCache, MachineConfig, NullProfiler,
    PhaseProfiler, SimPhase, SimResult, SteeringConfig, SwapStats,
};

/// Times `$body` and charges it to `$phase` — expands to bare `$body`
/// when the profiler type is disabled, so the untimed hot loop contains
/// no clock reads at all (same contract as the trace hooks).
macro_rules! timed {
    ($self:ident, $phase:expr, $body:expr) => {
        if P::ENABLED {
            let __start = Instant::now();
            let __result = $body;
            $self.profiler.add($phase, __start.elapsed());
            __result
        } else {
            $body
        }
    };
}

/// How many cycles the engine tolerates with no commit, issue or dispatch
/// before declaring itself wedged (a model bug, not a program property).
const WATCHDOG_CYCLES: u64 = 10_000;

/// The out-of-order superscalar simulator.
///
/// One `Simulator` owns the machine state (window, predictor, cache,
/// module latches) for a single run; create a fresh one per run. See the
/// crate-level docs for an example. In-flight storage is leased from a
/// thread-local arena pool, so constructing simulators in a loop reuses
/// one allocation.
///
/// The engine is generic over a [`TraceSink`]; [`Simulator::new`] uses
/// the no-op [`NullSink`] (its hooks compile away entirely), while
/// [`Simulator::with_sink`] delivers a cycle-stamped [`TraceEvent`]
/// stream — pipeline stages, steering decisions, operand swaps,
/// cache/branch outcomes, energy-ledger deltas — to any sink.
///
/// It is likewise generic over a [`PhaseProfiler`]; the default
/// [`NullProfiler`] compiles every wall-clock read away, while
/// [`Simulator::with_parts`] + [`PhaseTimers`](crate::PhaseTimers)
/// accounts hot-loop time to fetch/rename/steer/issue/writeback for the
/// `fua bench-suite` performance ledger. Profiling never feeds back into
/// simulation state: a profiled run is cycle-identical to an unprofiled
/// one.
pub struct Simulator<S: TraceSink = NullSink, P: PhaseProfiler = NullProfiler> {
    sink: S,
    profiler: P,
    config: MachineConfig,
    steering: SteeringConfig,
    booth: BoothModel,

    inflight: ArenaLease,
    window_len: usize,
    head_serial: u64,
    last_writer: [Option<u64>; 64],
    rs_used: [usize; 4],
    ports: Vec<Vec<ModulePorts>>,
    predictor: BimodalPredictor,
    cache: DataCache,

    cycle: u64,
    retired: u64,
    fetch_resume_cycle: u64,
    // Serial of an unresolved mispredicted branch blocking fetch.
    fetch_blocked_by: Option<u64>,
    // Single-slot skid buffer: an op pulled from the source that could not
    // dispatch because its reservation station was full.
    skid: Option<DynOp>,

    ledger: EnergyLedger,
    booth_energy: [f64; 4],
    occupancy: Vec<OccupancyProfiler>,
    bit_patterns: Vec<BitPatternProfiler>,
    swaps: SwapStats,
    branches: BranchStats,
}

impl Simulator<NullSink> {
    /// Creates an untraced simulator for one run.
    pub fn new(config: MachineConfig, steering: SteeringConfig) -> Self {
        Simulator::with_sink(config, steering, NullSink)
    }
}

impl<S: TraceSink> Simulator<S> {
    /// Creates a simulator whose pipeline hooks feed `sink` (without
    /// phase profiling).
    pub fn with_sink(config: MachineConfig, steering: SteeringConfig, sink: S) -> Self {
        Simulator::with_parts(config, steering, sink, NullProfiler)
    }
}

impl<S: TraceSink, P: PhaseProfiler> Simulator<S, P> {
    /// Creates a simulator with both a trace sink and a phase profiler
    /// attached; recover them after the run with
    /// [`into_parts`](Simulator::into_parts).
    pub fn with_parts(
        config: MachineConfig,
        steering: SteeringConfig,
        sink: S,
        profiler: P,
    ) -> Self {
        config.validate();
        let ports = FuClass::ALL
            .iter()
            .map(|c| vec![ModulePorts::new(); config.modules(*c)])
            .collect();
        let occupancy = FuClass::ALL
            .iter()
            .map(|c| OccupancyProfiler::new(config.modules(*c)))
            .collect();
        let cache = DataCache::new(config.cache);
        let inflight = InflightArena::lease(&config);
        Simulator {
            sink,
            profiler,
            config,
            steering,
            booth: BoothModel::new(),
            inflight,
            window_len: 0,
            head_serial: 0,
            last_writer: [None; 64],
            rs_used: [0; 4],
            ports,
            predictor: BimodalPredictor::new(4096),
            cache,
            cycle: 0,
            retired: 0,
            fetch_resume_cycle: 0,
            fetch_blocked_by: None,
            skid: None,
            ledger: EnergyLedger::new(),
            booth_energy: [0.0; 4],
            occupancy,
            bit_patterns: vec![BitPatternProfiler::new(); 4],
            swaps: SwapStats::default(),
            branches: BranchStats::default(),
        }
    }

    /// The attached trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes the simulator, returning the sink (to read a ring buffer
    /// or metrics registry after a run, or to thread one sink through a
    /// sequence of runs).
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// The attached phase profiler.
    pub fn profiler(&self) -> &P {
        &self.profiler
    }

    /// Consumes the simulator, returning sink and profiler together.
    pub fn into_parts(self) -> (S, P) {
        (self.sink, self.profiler)
    }

    /// Runs a program end-to-end: interprets it with [`fua_vm::Vm`] and
    /// feeds the dynamic instruction stream through the pipeline.
    ///
    /// # Errors
    ///
    /// Propagates interpreter faults ([`VmError`]).
    pub fn run_program(&mut self, program: &Program, limit: u64) -> Result<SimResult, VmError> {
        let mut vm = Vm::new(program);
        let mut remaining = limit;
        let result = self.run_source(|| {
            if remaining == 0 {
                return Ok(None);
            }
            remaining -= 1;
            vm.step()
        })?;
        Ok(SimResult {
            halted: vm.halted(),
            ..result
        })
    }

    /// Runs a pre-materialised trace (useful for tests and property
    /// checks).
    pub fn run_trace(&mut self, ops: &[DynOp]) -> SimResult {
        let mut iter = ops.iter().copied();
        self.run_source(|| Ok(iter.next()))
            .expect("a materialised trace cannot fault")
    }

    fn run_source(
        &mut self,
        mut next_op: impl FnMut() -> Result<Option<DynOp>, VmError>,
    ) -> Result<SimResult, VmError> {
        let mut source_done = false;
        let mut idle_cycles = 0u64;
        loop {
            let progress_commit = timed!(self, SimPhase::Writeback, {
                self.wake_completions();
                self.commit()
            });
            let progress_issue = timed!(self, SimPhase::Issue, self.issue());
            let progress_fetch = if source_done && self.skid.is_none() {
                0
            } else {
                let fetched = timed!(self, SimPhase::Fetch, self.fetch(&mut next_op))?;
                if fetched.1 {
                    source_done = true;
                }
                fetched.0
            };

            if S::ENABLED {
                self.sink.record(&TraceEvent::CycleSummary {
                    cycle: self.cycle,
                    window: self.window_len as u32,
                    issued: progress_issue as u32,
                });
            }
            self.cycle += 1;
            if self.window_len == 0 && source_done && self.skid.is_none() {
                break;
            }

            if progress_commit + progress_issue + progress_fetch == 0 {
                idle_cycles += 1;
                if idle_cycles >= WATCHDOG_CYCLES {
                    let head = (self.window_len > 0).then(|| {
                        let slot = (self.head_serial & self.inflight.mask) as usize;
                        (self.inflight.serial[slot], self.inflight.opcode[slot])
                    });
                    panic!("pipeline wedged at cycle {}: head {:?}", self.cycle, head);
                }
            } else {
                idle_cycles = 0;
            }
        }
        Ok(SimResult {
            cycles: self.cycle,
            retired: self.retired,
            halted: false,
            ledger: self.ledger,
            booth_energy: self.booth_energy,
            occupancy: self.occupancy.clone(),
            bit_patterns: self.bit_patterns.clone(),
            swaps: self.swaps,
            branches: self.branches,
            cache: CacheStats {
                hits: self.cache.hits(),
                misses: self.cache.misses(),
            },
        })
    }

    // --- wakeup ---

    /// Drains this cycle's completion-wheel bucket: every producer slot
    /// completing now walks its consumer list, decrementing each
    /// consumer's pending-operand count and setting its `ready` bit when
    /// the count hits zero. Runs before commit so a producer completing
    /// at cycle `c` satisfies consumers issuing at cycle `c`, matching
    /// the reference engine's `done_cycle <= cycle` check.
    fn wake_completions(&mut self) {
        let cycle = self.cycle;
        let head_serial = self.head_serial;
        let a = &mut *self.inflight;
        let idx = (cycle & a.wheel_mask) as usize;
        if a.wheel[idx].is_empty() {
            return;
        }
        let bucket = std::mem::take(&mut a.wheel[idx]);
        for &pslot in &bucket {
            let mut node = a.first_consumer[pslot as usize];
            a.first_consumer[pslot as usize] = NO_NODE;
            while node != NO_NODE {
                let next = a.next_consumer[node as usize];
                let cslot = (node >> 1) as usize;
                a.pending[cslot] -= 1;
                if a.pending[cslot] == 0 {
                    // A consumer cannot commit before it issues, so it is
                    // still in the window and this offset is in range.
                    let offset = (a.serial[cslot] - head_serial) as usize;
                    bit_set(&mut a.ready, offset);
                }
                node = next;
            }
        }
        // Hand the (cleared) allocation back to the wheel.
        let mut bucket = bucket;
        bucket.clear();
        self.inflight.wheel[idx] = bucket;
    }

    // --- commit ---

    fn commit(&mut self) -> usize {
        let cycle = self.cycle;
        let commit_width = self.config.commit_width;
        let mut committed = 0;
        while committed < commit_width && committed < self.window_len {
            // Offset `committed` is the current head: bits shift only
            // after the loop, so ages are relative to the old head.
            let a = &*self.inflight;
            if bit_get(&a.waiting, committed) {
                break;
            }
            let slot = ((self.head_serial + committed as u64) & a.mask) as usize;
            if a.done_cycle[slot] > cycle {
                break;
            }
            if S::ENABLED {
                let serial = a.serial[slot];
                let opcode = a.opcode[slot];
                self.sink.record(&TraceEvent::Stage {
                    stage: Stage::Retire,
                    cycle,
                    serial,
                    opcode,
                });
            }
            committed += 1;
        }
        if committed > 0 {
            self.head_serial += committed as u64;
            self.retired += committed as u64;
            self.window_len -= committed;
            let a = &mut *self.inflight;
            bit_shift_right(&mut a.waiting, committed);
            bit_shift_right(&mut a.ready, committed);
        }
        committed
    }

    // --- issue ---

    /// Selects this cycle's issue group into the arena's per-class
    /// scratch: oldest-first per class, one instruction per module,
    /// loads/stores contending for the memory ports. Out-of-order mode
    /// scans only the dense `ready` bitmask (deps already resolved by
    /// wakeup); in-order mode scans the `waiting` bitmask so the group is
    /// the maximal *prefix* of unissued instructions that can all go —
    /// the first stalled instruction (data or structural hazard) ends
    /// the group, as in a VLIW.
    fn select_ready(&mut self) {
        let head_serial = self.head_serial;
        let fu_counts = self.config.fu_counts;
        let in_order = self.config.in_order_issue;
        let mut mem_ports_left = self.config.mem_ports;
        let a = &mut *self.inflight;
        for sel in &mut a.selected {
            sel.clear();
        }
        if !in_order {
            for w in 0..a.words {
                let mut word = a.ready[w];
                while word != 0 {
                    let offset = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let slot = ((head_serial + offset as u64) & a.mask) as usize;
                    let ci = a.fu[slot].class.index();
                    let needs_port = a.has_mem[slot];
                    if a.selected[ci].len() < fu_counts[ci] && (!needs_port || mem_ports_left > 0) {
                        if needs_port {
                            mem_ports_left -= 1;
                        }
                        a.selected[ci].push(offset as u32);
                    }
                }
            }
        } else {
            'scan: for w in 0..a.words {
                let mut word = a.waiting[w];
                while word != 0 {
                    let offset = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let slot = ((head_serial + offset as u64) & a.mask) as usize;
                    let ci = a.fu[slot].class.index();
                    let needs_port = a.has_mem[slot];
                    let issuable = bit_get(&a.ready, offset)
                        && a.selected[ci].len() < fu_counts[ci]
                        && (!needs_port || mem_ports_left > 0);
                    if !issuable {
                        break 'scan;
                    }
                    if needs_port {
                        mem_ports_left -= 1;
                    }
                    a.selected[ci].push(offset as u32);
                }
            }
        }
    }

    fn issue(&mut self) -> usize {
        self.select_ready();
        if S::ENABLED {
            self.record_stalls();
        }
        let mut issued_total = 0;
        for class in FuClass::ALL {
            issued_total += self.issue_class(class);
        }
        issued_total
    }

    /// Classifies every *idle* issue slot of this cycle into the
    /// [`StallReason`] taxonomy (issued slots are recorded by
    /// `issue_class` alongside the energy charge, so per class the
    /// emitted slot counts sum to the module count — the exact
    /// partition `cycles × issue_width`).
    ///
    /// Runs only when a sink is attached and never mutates engine
    /// state: it mirrors `select_ready`'s walk (same age order over the
    /// `waiting` bitmask, same memory-port budget) to rediscover which
    /// candidates were passed over and why, so a traced run is
    /// cycle-identical to an untraced one.
    fn record_stalls(&mut self) {
        let mut idle = [0usize; 4];
        let mut width_left = [0usize; 4];
        for class in FuClass::ALL {
            let ci = class.index();
            width_left[ci] = self.config.modules(class);
            idle[ci] = width_left[ci] - self.inflight.selected[ci].len();
        }
        let mut mem_ports_left = self.config.mem_ports;
        let mut prefix_blocked = false;
        let head_serial = self.head_serial;
        let in_order = self.config.in_order_issue;
        for w in 0..self.inflight.words {
            let mut word = self.inflight.waiting[w];
            while word != 0 {
                let offset = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let a = &*self.inflight;
                let slot = ((head_serial + offset as u64) & a.mask) as usize;
                let class = a.fu[slot].class;
                let ci = class.index();
                let needs_port = a.has_mem[slot];
                let ready = bit_get(&a.ready, offset);
                if !prefix_blocked
                    && width_left[ci] > 0
                    && (!needs_port || mem_ports_left > 0)
                    && ready
                {
                    // This candidate was selected for issue.
                    if needs_port {
                        mem_ports_left -= 1;
                    }
                    width_left[ci] -= 1;
                    continue;
                }
                let reason = if prefix_blocked {
                    StallReason::SteeringDelay
                } else if !ready {
                    StallReason::OperandWait
                } else {
                    StallReason::FuBusy
                };
                if in_order {
                    prefix_blocked = true;
                }
                // Charge an idle slot of the candidate's class to it,
                // while slots remain (blocked candidates can outnumber
                // the idle slots — the slots are the resource being
                // partitioned).
                if idle[ci] > 0 {
                    idle[ci] -= 1;
                    let event = TraceEvent::Stall {
                        cycle: self.cycle,
                        class,
                        reason,
                        slots: 1,
                        pc: Some(a.static_idx[slot]),
                        case: Some(Case::from_index_masked(a.case_bits[slot])),
                    };
                    self.sink.record(&event);
                }
            }
        }
        // Residual idle slots had no candidate at all: a frontend
        // condition starved them, classified in the same priority order
        // `fetch` itself gates on.
        let (reason, pc) =
            if self.fetch_blocked_by.is_some() || self.cycle < self.fetch_resume_cycle {
                let culprit = self.fetch_blocked_by.and_then(|serial| {
                    serial
                        .checked_sub(self.head_serial)
                        .filter(|&off| (off as usize) < self.window_len)
                        .map(|_| self.inflight.static_idx[(serial & self.inflight.mask) as usize])
                });
                (StallReason::BranchRecovery, culprit)
            } else if self.window_len >= self.config.rob_size {
                let head_pc = (self.window_len > 0).then(|| {
                    self.inflight.static_idx[(self.head_serial & self.inflight.mask) as usize]
                });
                (StallReason::RobFull, head_pc)
            } else if let Some(op) = &self.skid {
                (StallReason::RsFull, Some(op.static_idx))
            } else {
                (StallReason::FetchStarved, None)
            };
        for class in FuClass::ALL {
            let ci = class.index();
            if idle[ci] > 0 {
                let event = TraceEvent::Stall {
                    cycle: self.cycle,
                    class,
                    reason,
                    slots: idle[ci] as u32,
                    pc,
                    case: None,
                };
                self.sink.record(&event);
            }
        }
    }

    fn issue_class(&mut self, class: FuClass) -> usize {
        let ci = class.index();
        let modules = self.config.modules(class);
        let selected = std::mem::take(&mut self.inflight.selected[ci]);
        debug_assert!(selected.len() <= modules);
        self.occupancy[ci].record(selected.len());
        if selected.is_empty() {
            self.inflight.selected[ci] = selected;
            return 0;
        }
        let head_serial = self.head_serial;
        let mask = self.inflight.mask;
        let slot_of = |offset: u32| ((head_serial + offset as u64) & mask) as usize;

        // Build the FU operations, applying the static swap rules. The
        // pre-decoded case bits track each op through every swap, so no
        // operand word is re-inspected on this path.
        let mut ops = std::mem::take(&mut self.inflight.ops_scratch);
        let mut case_bits = std::mem::take(&mut self.inflight.bits_scratch);
        ops.clear();
        case_bits.clear();
        for &offset in &selected {
            let slot = slot_of(offset);
            ops.push(self.inflight.fu[slot]);
            case_bits.push(self.inflight.case_bits[slot]);
        }
        if let Some(rule) = self.steering.swap_rule(class) {
            let target = rule.case().index() as u8;
            for i in 0..ops.len() {
                let op = &mut ops[i];
                if op.commutative && case_bits[i] == target {
                    *op = op.swapped();
                    case_bits[i] = Case::swap_index(case_bits[i]);
                    self.swaps.rule_swaps += 1;
                    if S::ENABLED {
                        let serial = self.inflight.serial[slot_of(selected[i])];
                        self.sink.record(&TraceEvent::OperandSwap {
                            cycle: self.cycle,
                            serial,
                            class,
                            kind: SwapKind::Rule,
                        });
                    }
                }
            }
        }
        if matches!(class, FuClass::IntMul | FuClass::FpMul) {
            if let Some(rule) = self.steering.multiplier_swap {
                for i in 0..ops.len() {
                    let slot = slot_of(selected[i]);
                    let opcode = self.inflight.opcode[slot];
                    if matches!(opcode, Opcode::Mul | Opcode::FMul) && rule.apply(&mut ops[i]) {
                        case_bits[i] = Case::swap_index(case_bits[i]);
                        self.swaps.multiplier_swaps += 1;
                        if S::ENABLED {
                            let serial = self.inflight.serial[slot];
                            self.sink.record(&TraceEvent::OperandSwap {
                                cycle: self.cycle,
                                serial,
                                class,
                                kind: SwapKind::Multiplier,
                            });
                        }
                    }
                }
            }
        }

        // Steer: duplicated classes consult the policy, single-module
        // classes trivially use module 0. The choices buffer is arena
        // scratch like `ops`: reused every cycle, so steady-state issue
        // stays allocation-free (the gate in tests/alloc_gate.rs).
        let mut choices = std::mem::take(&mut self.inflight.choices_scratch);
        choices.clear();
        if modules > 1 {
            timed!(self, SimPhase::Steer, {
                let policy = self
                    .steering
                    .policy_mut(class)
                    .expect("duplicated classes have a policy");
                policy.assign_into(&ops, &self.ports[ci], &mut choices);
            })
        } else {
            choices.extend(ops.iter().map(|_| fua_steer::ModuleChoice {
                module: 0,
                swap: false,
            }));
        }
        if cfg!(debug_assertions) {
            fua_steer::validate_choices(&ops, modules, &choices);
        }

        // Latch, charge energy, schedule completion.
        for (i, &choice) in choices.iter().enumerate() {
            let mut op = ops[i];
            let offset = selected[i] as usize;
            let slot = slot_of(selected[i]);
            // The case the steering policy saw (post rule-swap,
            // pre policy-swap) — what a Steer trace event reports.
            let steer_case = Case::from_index_masked(case_bits[i]);
            if choice.swap {
                debug_assert!(op.commutative);
                op = op.swapped();
                self.swaps.policy_swaps += 1;
            }
            let ports = &mut self.ports[ci][choice.module];
            let bits = ports.latch(op.op1, op.op2);
            self.ledger.charge(class, bits);
            self.bit_patterns[ci].record(&op);

            let opcode = self.inflight.opcode[slot];
            let serial = self.inflight.serial[slot];
            let entry_pc = self.inflight.static_idx[slot];
            if matches!(opcode, Opcode::Mul | Opcode::FMul) {
                // Booth activity model (extension; see DESIGN.md). The
                // latch already advanced, so reconstruct prev from cost.
                self.booth_energy[ci] += self.booth.pp_weight
                    * fua_power::booth::nonzero_booth_digits(
                        fua_power::booth::significand(op.op2).0,
                        fua_power::booth::significand(op.op2).1,
                    ) as f64
                    * op.op1.power_width() as f64
                    + self.booth.sw_weight * bits as f64;
            }

            let mut latency = self.config.latency(opcode);
            let mut cache_event = None;
            if self.inflight.has_mem[slot] {
                let mem = self.inflight.mem[slot];
                let mem_latency = self.cache.access(mem.addr);
                if mem.is_load {
                    latency += mem_latency;
                }
                if S::ENABLED {
                    cache_event = Some(TraceEvent::Cache {
                        cycle: self.cycle,
                        serial,
                        addr: mem.addr,
                        hit: mem_latency == self.cache.config().hit_latency,
                        latency: mem_latency,
                    });
                }
            }
            let done_cycle = self.cycle + latency;
            {
                let a = &mut *self.inflight;
                a.done_cycle[slot] = done_cycle;
                bit_clear(&mut a.waiting, offset);
                bit_clear(&mut a.ready, offset);
                debug_assert!(
                    ((done_cycle - self.cycle) as usize) < a.wheel.len(),
                    "completion wheel must cover every latency"
                );
                let widx = (done_cycle & a.wheel_mask) as usize;
                a.wheel[widx].push(slot as u32);
            }
            self.rs_used[ci] -= 1;

            // A resolved mispredicted branch un-blocks fetch.
            if self.fetch_blocked_by == Some(serial) {
                self.fetch_blocked_by = None;
                self.fetch_resume_cycle = done_cycle + self.config.mispredict_penalty;
            }

            if S::ENABLED {
                let module = choice.module as u8;
                self.sink.record(&TraceEvent::Stage {
                    stage: Stage::Issue,
                    cycle: self.cycle,
                    serial,
                    opcode,
                });
                if modules > 1 {
                    self.sink.record(&TraceEvent::Steer {
                        cycle: self.cycle,
                        serial,
                        class,
                        case: steer_case,
                        module,
                        swap: choice.swap,
                        cost_bits: bits,
                    });
                }
                if choice.swap {
                    self.sink.record(&TraceEvent::OperandSwap {
                        cycle: self.cycle,
                        serial,
                        class,
                        kind: SwapKind::Policy,
                    });
                }
                self.sink.record(&TraceEvent::Energy {
                    cycle: self.cycle,
                    serial,
                    pc: entry_pc,
                    class,
                    module,
                    case: steer_case,
                    bits,
                });
                self.sink.record(&TraceEvent::Stall {
                    cycle: self.cycle,
                    class,
                    reason: StallReason::Issued,
                    slots: 1,
                    pc: Some(entry_pc),
                    case: Some(steer_case),
                });
                if let Some(event) = cache_event {
                    self.sink.record(&event);
                }
                self.sink.record(&TraceEvent::Execute {
                    cycle: self.cycle,
                    serial,
                    class,
                    module,
                    latency,
                    opcode,
                });
                self.sink.record(&TraceEvent::Stage {
                    stage: Stage::Writeback,
                    cycle: done_cycle,
                    serial,
                    opcode,
                });
            }
        }
        let issued = selected.len();
        // Return the scratch buffers (and their capacity) to the arena.
        self.inflight.selected[ci] = selected;
        self.inflight.ops_scratch = ops;
        self.inflight.bits_scratch = case_bits;
        self.inflight.choices_scratch = choices;
        issued
    }

    // --- fetch/dispatch ---

    /// Returns (dispatched count, source exhausted).
    fn fetch(
        &mut self,
        next_op: &mut impl FnMut() -> Result<Option<DynOp>, VmError>,
    ) -> Result<(usize, bool), VmError> {
        if self.fetch_blocked_by.is_some() || self.cycle < self.fetch_resume_cycle {
            return Ok((0, false));
        }
        let mut dispatched = 0;
        while dispatched < self.config.fetch_width {
            if self.window_len >= self.config.rob_size {
                break;
            }
            // Drain the skid buffer (an op stalled on a full reservation
            // station last cycle) before pulling from the source.
            let op = match self.skid.take() {
                Some(op) => op,
                None => match next_op()? {
                    Some(op) => {
                        if S::ENABLED {
                            self.sink.record(&TraceEvent::Stage {
                                stage: Stage::Fetch,
                                cycle: self.cycle,
                                serial: op.serial,
                                opcode: op.opcode,
                            });
                        }
                        op
                    }
                    None => return Ok((dispatched, true)),
                },
            };
            if let Some(fu) = op.fu {
                if self.rs_used[fu.class.index()] >= self.config.rs_entries {
                    // Structural stall: park the op and retry next cycle.
                    self.skid = Some(op);
                    break;
                }
                self.rs_used[fu.class.index()] += 1;
            }
            timed!(self, SimPhase::Rename, self.dispatch(op));
            dispatched += 1;
            if self.fetch_blocked_by.is_some() {
                break; // mispredicted branch ends the fetch group
            }
        }
        Ok((dispatched, false))
    }

    fn dispatch(&mut self, op: DynOp) {
        if S::ENABLED {
            self.sink.record(&TraceEvent::Stage {
                stage: Stage::Decode,
                cycle: self.cycle,
                serial: op.serial,
                opcode: op.opcode,
            });
        }
        let deps = [
            op.srcs[0].and_then(|r| self.last_writer[r.dense_index()]),
            op.srcs[1].and_then(|r| self.last_writer[r.dense_index()]),
        ];
        if S::ENABLED {
            self.sink.record(&TraceEvent::Dependence {
                cycle: self.cycle,
                serial: op.serial,
                pc: op.static_idx,
                dep1: deps[0],
                dep2: deps[1],
            });
        }
        if let Some(dst) = op.dst {
            self.last_writer[dst.dense_index()] = Some(op.serial);
        }
        if let Some(branch) = op.branch {
            if !branch.unconditional {
                self.branches.branches += 1;
                let predicted = self.predictor.predict(op.static_idx);
                self.predictor.update(op.static_idx, branch.taken);
                if S::ENABLED {
                    self.sink.record(&TraceEvent::Branch {
                        cycle: self.cycle,
                        serial: op.serial,
                        taken: branch.taken,
                        predicted,
                    });
                }
                if predicted != branch.taken {
                    self.branches.mispredicts += 1;
                    self.fetch_blocked_by = Some(op.serial);
                }
            }
        }

        // Write the slot. Ring-index stability: slot = serial & mask never
        // collides while the instruction is in flight, because the window
        // holds at most rob_size <= capacity consecutive serials.
        let cycle = self.cycle;
        let head_serial = self.head_serial;
        let offset = self.window_len;
        let a = &mut *self.inflight;
        let slot = (op.serial & a.mask) as usize;
        a.serial[slot] = op.serial;
        a.opcode[slot] = op.opcode;
        a.static_idx[slot] = op.static_idx;
        a.first_consumer[slot] = NO_NODE;
        a.done_cycle[slot] = cycle + 1;
        match op.fu {
            Some(fu) => {
                a.fu[slot] = fu;
                a.case_bits[slot] = fu.case_bits();
                a.has_mem[slot] = op.mem.is_some();
                if let Some(mem) = op.mem {
                    a.mem[slot] = mem;
                }
                // Register unresolved operands with their producers'
                // consumer lists; resolved ones need no wakeup.
                let mut pending = 0u8;
                for (k, dep) in deps.iter().enumerate() {
                    if let Some(s) = *dep {
                        let satisfied = s < head_serial || {
                            let p_offset = (s - head_serial) as usize;
                            let p_slot = (s & a.mask) as usize;
                            !bit_get(&a.waiting, p_offset) && a.done_cycle[p_slot] <= cycle
                        };
                        if !satisfied {
                            pending += 1;
                            let node = (slot * 2 + k) as u32;
                            let p_slot = (s & a.mask) as usize;
                            a.next_consumer[node as usize] = a.first_consumer[p_slot];
                            a.first_consumer[p_slot] = node;
                        }
                    }
                }
                a.pending[slot] = pending;
                bit_set(&mut a.waiting, offset);
                if pending == 0 {
                    bit_set(&mut a.ready, offset);
                }
            }
            None => {
                // No FU: completes next cycle. Schedule the completion so
                // consumers registered on this slot still get woken.
                a.has_mem[slot] = false;
                let widx = ((cycle + 1) & a.wheel_mask) as usize;
                a.wheel[widx].push(slot as u32);
            }
        }
        self.window_len += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::{FpReg, IntReg, ProgramBuilder};

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    fn f(i: u8) -> FpReg {
        FpReg::new(i)
    }

    fn run(program: &Program) -> SimResult {
        let mut sim = Simulator::new(MachineConfig::default(), SteeringConfig::original());
        sim.run_program(program, 1_000_000).expect("runs")
    }

    #[test]
    fn straight_line_code_retires_everything() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 1);
        b.li(r(2), 2);
        b.add(r(3), r(1), r(2));
        b.halt();
        let p = b.build().expect("valid");
        let res = run(&p);
        assert!(res.halted);
        assert_eq!(res.retired, 4);
        assert!(res.cycles >= 2);
    }

    #[test]
    fn independent_ops_issue_in_parallel() {
        // Four independent adds (after their li's) should issue in one
        // cycle on the 4-IALU machine.
        let mut b = ProgramBuilder::new();
        for i in 1..=4 {
            b.li(r(i), i as i32);
        }
        for i in 1..=4 {
            b.add(r(i + 4), r(i), r(i));
        }
        b.halt();
        let p = b.build().expect("valid");
        let res = run(&p);
        let occ = res.occupancy_of(FuClass::IntAlu);
        assert!(occ.freq(4) > 0.0, "expected at least one 4-wide cycle");
    }

    #[test]
    fn dependent_chain_serialises() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0);
        for _ in 0..20 {
            b.addi(r(1), r(1), 1);
        }
        b.halt();
        let p = b.build().expect("valid");
        let res = run(&p);
        assert!(res.halted);
        assert_eq!(res.retired, 22);
        // A 20-deep dependence chain needs at least 20 cycles.
        assert!(res.cycles >= 20, "cycles = {}", res.cycles);
        let occ = res.occupancy_of(FuClass::IntAlu);
        assert!(occ.freq(1) > 0.8, "chain should issue one at a time");
    }

    #[test]
    fn loop_exercises_branch_predictor() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.li(r(1), 100);
        b.bind(top);
        b.addi(r(1), r(1), -1);
        b.bgtz(r(1), top);
        b.halt();
        let p = b.build().expect("valid");
        let res = run(&p);
        assert!(res.halted);
        assert_eq!(res.branches.branches, 100);
        // A bimodal predictor learns the loop quickly.
        assert!(
            res.branches.mispredict_rate() < 0.2,
            "rate = {}",
            res.branches.mispredict_rate()
        );
    }

    #[test]
    fn cache_misses_then_hits_on_reuse() {
        let mut b = ProgramBuilder::new();
        let base = b.data_words(&[1, 2, 3, 4, 5, 6, 7, 8]);
        b.li(r(1), base);
        // Two passes over one cache line (same addresses both times).
        for _pass in 0..2 {
            for i in 0..8 {
                b.lw(r(2 + (i % 4) as u8), r(1), i * 4);
            }
        }
        b.halt();
        let p = b.build().expect("valid");
        let res = run(&p);
        assert!(res.cache.hits > res.cache.misses);
    }

    #[test]
    fn energy_is_charged_per_issue() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0);
        b.li(r(2), -1);
        b.add(r(3), r(1), r(2));
        b.add(r(4), r(2), r(2));
        b.halt();
        let p = b.build().expect("valid");
        let res = run(&p);
        assert_eq!(res.ledger.ops(FuClass::IntAlu), 4);
        assert!(res.ledger.switched_bits(FuClass::IntAlu) > 0);
    }

    #[test]
    fn fp_pipeline_reaches_the_fp_units() {
        let mut b = ProgramBuilder::new();
        b.fli(f(1), 1.5);
        b.fli(f(2), 2.5);
        b.fadd(f(3), f(1), f(2));
        b.fmul(f(4), f(3), f(2));
        b.halt();
        let p = b.build().expect("valid");
        let res = run(&p);
        assert_eq!(res.ledger.ops(FuClass::FpAlu), 1);
        assert_eq!(res.ledger.ops(FuClass::FpMul), 1);
        assert!(res.booth_energy[FuClass::FpMul.index()] > 0.0);
    }

    #[test]
    fn steering_reduces_energy_on_a_bimodal_stream() {
        // Alternating all-zero and all-one operand pairs: FCFS ping-pongs
        // every module, Full Ham separates the streams.
        let build = || {
            let mut b = ProgramBuilder::new();
            let top = b.new_label();
            b.li(r(1), 0);
            b.li(r(2), -1);
            b.li(r(5), 200);
            b.bind(top);
            b.add(r(3), r(1), r(1));
            b.sub(r(4), r(2), r(2));
            b.addi(r(5), r(5), -1);
            b.bgtz(r(5), top);
            b.halt();
            b.build().expect("valid")
        };
        let p = build();
        let mut base_sim = Simulator::new(MachineConfig::default(), SteeringConfig::original());
        let base = base_sim.run_program(&p, 1_000_000).expect("runs");
        let mut opt_sim = Simulator::new(
            MachineConfig::default(),
            SteeringConfig::paper_scheme(fua_steer::SteeringKind::FullHam, false),
        );
        let opt = opt_sim.run_program(&p, 1_000_000).expect("runs");
        assert_eq!(base.retired, opt.retired, "timing-independent retire count");
        assert!(
            opt.ledger.switched_bits(FuClass::IntAlu) <= base.ledger.switched_bits(FuClass::IntAlu),
            "Full Ham must not exceed FCFS switching"
        );
    }

    #[test]
    fn rs_backpressure_does_not_lose_instructions() {
        // A long chain of dependent divides clogs the IntMul RS; every
        // instruction must still retire.
        let mut b = ProgramBuilder::new();
        b.li(r(1), 1_000_000);
        for _ in 0..30 {
            b.alui(fua_isa::Opcode::Div, r(1), r(1), 1);
        }
        b.halt();
        let p = b.build().expect("valid");
        let res = run(&p);
        assert!(res.halted);
        assert_eq!(res.retired, 32);
    }

    #[test]
    fn profiled_run_is_cycle_identical_and_accumulates_time() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.li(r(1), 200);
        b.bind(top);
        b.add(r(2), r(1), r(1));
        b.addi(r(1), r(1), -1);
        b.bgtz(r(1), top);
        b.halt();
        let p = b.build().expect("valid");
        let plain = run(&p);
        let mut sim = Simulator::with_parts(
            MachineConfig::default(),
            SteeringConfig::original(),
            NullSink,
            crate::PhaseTimers::new(),
        );
        let profiled = sim.run_program(&p, 1_000_000).expect("runs");
        // The profiler never perturbs simulation state.
        assert_eq!(plain.cycles, profiled.cycles);
        assert_eq!(plain.retired, profiled.retired);
        assert_eq!(plain.ledger, profiled.ledger);
        let (_, timers) = sim.into_parts();
        for phase in [
            SimPhase::Fetch,
            SimPhase::Rename,
            SimPhase::Issue,
            SimPhase::Writeback,
        ] {
            assert!(
                timers.intervals(phase) > 0,
                "no intervals recorded for {}",
                phase.name()
            );
        }
        // FCFS steering still solves an assignment for the IALU group.
        assert!(timers.intervals(SimPhase::Steer) > 0);
        // Nesting: steer time is a component of issue time.
        assert!(timers.total(SimPhase::Issue) >= timers.total(SimPhase::Steer));
    }

    #[test]
    fn stall_partition_accounts_every_issue_slot_exactly() {
        use fua_trace::StallSink;
        // Mix of dependence chains, loads, branches and multiplies so
        // several taxonomy reasons fire.
        let mut b = ProgramBuilder::new();
        let base = b.data_words(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let top = b.new_label();
        b.li(r(1), base);
        b.li(r(5), 40);
        b.bind(top);
        b.lw(r(2), r(1), 0);
        b.addi(r(3), r(2), 1);
        b.alui(fua_isa::Opcode::Mul, r(4), r(3), 3);
        b.addi(r(5), r(5), -1);
        b.bgtz(r(5), top);
        b.halt();
        let p = b.build().expect("valid");

        let config = MachineConfig::paper_default();
        let issue_width = config.issue_width() as u64;
        let mut sim = Simulator::with_sink(config, SteeringConfig::original(), StallSink::new());
        let traced = sim.run_program(&p, 1_000_000).expect("runs");
        let sink = sim.into_sink();
        assert_eq!(
            sink.total_slots(),
            traced.cycles * issue_width,
            "stall partition must cover cycles x issue_width exactly"
        );
        let totals = sink.reason_totals();
        assert_eq!(totals.iter().sum::<u64>(), sink.total_slots());
        let fu_ops: u64 = FuClass::ALL.iter().map(|&c| traced.ledger.ops(c)).sum();
        assert_eq!(
            totals[StallReason::Issued.index()],
            fu_ops,
            "issued slots equal FU operations latched"
        );
        assert!(totals[StallReason::OperandWait.index()] > 0);

        // And the profiled run is cycle-identical to the unprofiled one.
        let plain = run(&p);
        assert_eq!(plain.cycles, traced.cycles);
        assert_eq!(plain.ledger, traced.ledger);
    }

    #[test]
    fn in_order_prefix_blocking_classifies_as_steering_delay() {
        use fua_trace::StallSink;
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0);
        for _ in 0..20 {
            b.addi(r(1), r(1), 1); // dependent chain blocks the prefix
        }
        for k in 2..6 {
            b.addi(r(k), r(k), 1); // independent tail, in-order blocked
        }
        b.halt();
        let p = b.build().expect("valid");
        let mut sim = Simulator::with_sink(
            MachineConfig::in_order(),
            SteeringConfig::original(),
            StallSink::new(),
        );
        let result = sim.run_program(&p, 10_000).expect("runs");
        let sink = sim.into_sink();
        assert_eq!(
            sink.total_slots(),
            result.cycles * MachineConfig::in_order().issue_width() as u64
        );
        assert!(
            sink.reason_totals()[StallReason::SteeringDelay.index()] > 0,
            "in-order prefix rule must surface as steering delay"
        );
    }

    #[test]
    fn mispredicted_branch_stalls_fetch() {
        // A data-dependent unpredictable branch pattern costs cycles.
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        let skip = b.new_label();
        b.li(r(1), 64);
        b.li(r(2), 0x5A5A_5A5A_u32 as i32); // pseudo-random bits
        b.bind(top);
        b.andi(r(3), r(2), 1);
        b.srli(r(2), r(2), 1);
        b.blez(r(3), skip);
        b.addi(r(4), r(4), 1);
        b.bind(skip);
        b.addi(r(1), r(1), -1);
        b.bgtz(r(1), top);
        b.halt();
        let p = b.build().expect("valid");
        let res = run(&p);
        assert!(res.halted);
        assert!(res.branches.mispredicts > 0);
    }
}

#[cfg(test)]
mod in_order_tests {
    use super::*;
    use fua_isa::{IntReg, ProgramBuilder};

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    /// Pointer chasing (dependent cache-missing loads) interleaved with
    /// independent adds, on a machine with a single integer ALU: the OoO
    /// core fills the ALU with the adds while the chase load's consumer
    /// stalls at the head; the in-order core idles behind it.
    fn shadow_program() -> Program {
        let mut b = ProgramBuilder::new();
        // A pointer ring whose nodes are one cache line apart.
        const NODES: i32 = 64;
        let mut ring = vec![0i32; (NODES * 16) as usize];
        for k in 0..NODES {
            ring[(k * 16) as usize] = ((k + 1) % NODES) * 64;
        }
        let base = b.data_words(&ring);
        let top = b.new_label();
        b.li(r(1), base);
        b.li(r(2), 2 * NODES);
        b.bind(top);
        b.lw(r(1), r(1), 0); // chase (frequent conflict misses)
        b.addi(r(3), r(1), 5); // depends on the load: stalls at the head
        for k in 4..10 {
            b.addi(r(k), r(k), 1); // independent filler
        }
        b.addi(r(2), r(2), -1);
        b.bgtz(r(2), top);
        b.halt();
        b.build().expect("valid")
    }

    fn narrow(mut m: MachineConfig) -> MachineConfig {
        m.fu_counts[FuClass::IntAlu.index()] = 1;
        m
    }

    #[test]
    fn in_order_issue_costs_cycles_on_long_shadows() {
        let p = shadow_program();
        let mut ooo = Simulator::new(
            narrow(MachineConfig::paper_default()),
            SteeringConfig::original(),
        );
        let ooo_result = ooo.run_program(&p, 100_000).expect("runs");
        let mut vliw = Simulator::new(
            narrow(MachineConfig::in_order()),
            SteeringConfig::original(),
        );
        let vliw_result = vliw.run_program(&p, 100_000).expect("runs");
        assert_eq!(ooo_result.retired, vliw_result.retired);
        assert!(
            vliw_result.cycles > ooo_result.cycles,
            "in-order ({}) should be slower than OoO ({})",
            vliw_result.cycles,
            ooo_result.cycles
        );
    }

    #[test]
    fn in_order_issue_preserves_energy_accounting() {
        // The same program charges the same FU operation counts whether
        // issue is in-order or out-of-order.
        let p = shadow_program();
        let mut vliw = Simulator::new(
            narrow(MachineConfig::in_order()),
            SteeringConfig::original(),
        );
        let in_order = vliw.run_program(&p, 100_000).expect("runs");
        let mut ooo = Simulator::new(
            narrow(MachineConfig::paper_default()),
            SteeringConfig::original(),
        );
        let out_of_order = ooo.run_program(&p, 100_000).expect("runs");
        assert!(in_order.halted);
        assert_eq!(
            in_order.ledger.ops(FuClass::IntAlu),
            out_of_order.ledger.ops(FuClass::IntAlu)
        );
        assert!(in_order.ledger.switched_bits(FuClass::IntAlu) > 0);
    }

    #[test]
    fn in_order_never_issues_past_a_stall() {
        // With in-order issue, occupancy on the IALU can still reach 4
        // (independent prefix), but a dependent chain caps it at 1.
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0);
        for _ in 0..30 {
            b.addi(r(1), r(1), 1);
        }
        b.halt();
        let p = b.build().expect("valid");
        let mut sim = Simulator::new(MachineConfig::in_order(), SteeringConfig::original());
        let result = sim.run_program(&p, 10_000).expect("runs");
        let occ = result.occupancy_of(FuClass::IntAlu);
        assert!(occ.freq(1) > 0.9, "dependent chain must issue singly");
    }
}
