//! A 2-bit bimodal branch predictor.

/// Classic bimodal predictor: a table of 2-bit saturating counters indexed
/// by the static instruction index.
///
/// # Examples
///
/// ```
/// use fua_sim::BimodalPredictor;
///
/// let mut p = BimodalPredictor::new(1024);
/// // Counters start weakly not-taken; training flips the prediction.
/// assert!(!p.predict(42));
/// p.update(42, true);
/// p.update(42, true);
/// assert!(p.predict(42));
/// ```
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    counters: Vec<u8>,
}

impl BimodalPredictor {
    /// Creates a predictor with `entries` counters (rounded up to a power
    /// of two), initialised weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries >= 1);
        BimodalPredictor {
            counters: vec![1; entries.next_power_of_two()],
        }
    }

    #[inline]
    fn index(&self, static_idx: u32) -> usize {
        static_idx as usize & (self.counters.len() - 1)
    }

    /// Predicts whether the branch at `static_idx` is taken.
    #[inline]
    pub fn predict(&self, static_idx: u32) -> bool {
        self.counters[self.index(static_idx)] >= 2
    }

    /// Trains the counter with the actual outcome.
    #[inline]
    pub fn update(&mut self, static_idx: u32, taken: bool) {
        let i = self.index(static_idx);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut p = BimodalPredictor::new(4);
        for _ in 0..10 {
            p.update(0, true);
        }
        assert!(p.predict(0));
        p.update(0, false);
        assert!(p.predict(0), "one miss does not flip a saturated counter");
        for _ in 0..10 {
            p.update(0, false);
        }
        assert!(!p.predict(0));
    }

    #[test]
    fn aliasing_uses_low_bits() {
        let mut p = BimodalPredictor::new(4);
        p.update(0, true);
        p.update(4, true); // aliases with 0
        assert!(p.predict(0));
    }

    #[test]
    fn loop_branch_trains_quickly() {
        let mut p = BimodalPredictor::new(64);
        let mut mispredicts = 0;
        for i in 0..100 {
            let taken = i % 10 != 9; // loop taken 9 of 10
            if p.predict(7) != taken {
                mispredicts += 1;
            }
            p.update(7, taken);
        }
        assert!(mispredicts < 25, "got {mispredicts}");
    }
}
