//! Wall-clock phase profiling for the simulator hot loop.
//!
//! Mirrors the zero-cost [`TraceSink`](fua_trace::TraceSink) pattern: the
//! engine is generic over a [`PhaseProfiler`] whose default
//! [`NullProfiler`] sets [`PhaseProfiler::ENABLED`] to `false`, so every
//! timing hook — including the `Instant::now()` reads — compiles away
//! and the untraced hot path is unchanged. Attach [`PhaseTimers`] to
//! measure where simulator wall-clock goes, phase by phase
//! (fetch/rename/steer/issue/writeback), for the `fua bench-suite`
//! performance ledger.
//!
//! Timers use [`std::time::Instant`] (monotonic), never the wall clock,
//! and never feed back into simulation state — a profiled run retires
//! the identical instruction stream cycle for cycle.

use std::fmt;
use std::time::Duration;

use fua_trace::{Json, ToJson};

/// A phase of the simulator's per-cycle hot loop.
///
/// `Steer` nests inside `Issue` (the policy's assignment problem) and
/// `Rename` nests inside `Fetch` (dependence capture at dispatch), so
/// the five totals are *not* disjoint: `Issue` includes `Steer`, and
/// `Fetch` includes `Rename`. Subtract to get exclusive times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimPhase {
    /// Pulling instructions from the dynamic source into the window.
    Fetch,
    /// Dependence capture + predictor/branch handling at dispatch
    /// (nested inside `Fetch`).
    Rename,
    /// The steering policy's module-assignment solve (nested inside
    /// `Issue`).
    Steer,
    /// Wakeup/select, swap rules, latching and energy accounting.
    Issue,
    /// In-order commit from the head of the window.
    Writeback,
}

impl SimPhase {
    /// All phases, in hot-loop order.
    pub const ALL: [SimPhase; 5] = [
        SimPhase::Fetch,
        SimPhase::Rename,
        SimPhase::Steer,
        SimPhase::Issue,
        SimPhase::Writeback,
    ];

    /// A short lowercase name ("fetch", "steer", ...).
    pub fn name(self) -> &'static str {
        match self {
            SimPhase::Fetch => "fetch",
            SimPhase::Rename => "rename",
            SimPhase::Steer => "steer",
            SimPhase::Issue => "issue",
            SimPhase::Writeback => "writeback",
        }
    }
}

/// Receives per-phase elapsed wall-clock from an instrumented engine.
///
/// Like [`TraceSink`](fua_trace::TraceSink), the engine monomorphises
/// per profiler type; with [`NullProfiler`] every hook (and its
/// `Instant::now()` call) is dead code.
pub trait PhaseProfiler {
    /// Whether the engine should read clocks at all. Only no-op
    /// profilers set this to `false`.
    const ENABLED: bool = true;

    /// Accumulates one timed interval of `phase`.
    fn add(&mut self, phase: SimPhase, elapsed: Duration);
}

/// The default profiler: no clocks, no cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProfiler;

impl PhaseProfiler for NullProfiler {
    const ENABLED: bool = false;

    #[inline(always)]
    fn add(&mut self, _phase: SimPhase, _elapsed: Duration) {}
}

/// Accumulated wall-clock per hot-loop phase.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use fua_sim::{PhaseProfiler, PhaseTimers, SimPhase};
///
/// let mut timers = PhaseTimers::new();
/// timers.add(SimPhase::Issue, Duration::from_micros(7));
/// timers.add(SimPhase::Issue, Duration::from_micros(3));
/// assert_eq!(timers.total(SimPhase::Issue), Duration::from_micros(10));
/// assert_eq!(timers.intervals(SimPhase::Issue), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimers {
    totals: [Duration; 5],
    intervals: [u64; 5],
}

impl PhaseTimers {
    /// All-zero timers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total wall-clock accumulated for `phase`.
    pub fn total(&self, phase: SimPhase) -> Duration {
        self.totals[phase as usize]
    }

    /// Number of timed intervals folded into `phase`.
    pub fn intervals(&self, phase: SimPhase) -> u64 {
        self.intervals[phase as usize]
    }

    /// Total nanoseconds per phase, in [`SimPhase::ALL`] order.
    pub fn nanos(&self) -> [u64; 5] {
        let mut out = [0u64; 5];
        for (o, d) in out.iter_mut().zip(self.totals) {
            *o = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        }
        out
    }

    /// Merges another set of timers into this one (aggregating runs).
    pub fn merge(&mut self, other: &PhaseTimers) {
        for i in 0..5 {
            self.totals[i] += other.totals[i];
            self.intervals[i] += other.intervals[i];
        }
    }
}

impl PhaseProfiler for PhaseTimers {
    #[inline]
    fn add(&mut self, phase: SimPhase, elapsed: Duration) {
        self.totals[phase as usize] += elapsed;
        self.intervals[phase as usize] += 1;
    }
}

impl ToJson for PhaseTimers {
    /// `{"fetch": {"nanos": …, "intervals": …}, …}` in hot-loop order.
    fn to_json(&self) -> Json {
        Json::Obj(
            SimPhase::ALL
                .iter()
                .map(|&p| {
                    (
                        p.name().to_string(),
                        Json::obj([
                            (
                                "nanos",
                                Json::UInt(
                                    u64::try_from(self.total(p).as_nanos()).unwrap_or(u64::MAX),
                                ),
                            ),
                            ("intervals", Json::UInt(self.intervals(p))),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

impl fmt::Display for PhaseTimers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for phase in SimPhase::ALL {
            writeln!(
                f,
                "{:9} {:>12.3?} over {:>10} intervals",
                phase.name(),
                self.total(phase),
                self.intervals(phase)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn null_profiler_is_disabled() {
        assert!(!NullProfiler::ENABLED);
        assert!(PhaseTimers::ENABLED);
    }

    #[test]
    fn timers_accumulate_and_merge() {
        let mut a = PhaseTimers::new();
        a.add(SimPhase::Fetch, Duration::from_nanos(100));
        a.add(SimPhase::Steer, Duration::from_nanos(50));
        let mut b = PhaseTimers::new();
        b.add(SimPhase::Fetch, Duration::from_nanos(25));
        a.merge(&b);
        assert_eq!(a.total(SimPhase::Fetch), Duration::from_nanos(125));
        assert_eq!(a.intervals(SimPhase::Fetch), 2);
        assert_eq!(a.nanos(), [125, 0, 50, 0, 0]);
    }

    #[test]
    fn json_names_every_phase() {
        let mut t = PhaseTimers::new();
        t.add(SimPhase::Writeback, Duration::from_nanos(9));
        let json = t.to_json().pretty();
        for phase in SimPhase::ALL {
            assert!(json.contains(phase.name()), "{json}");
        }
        assert!(json.contains("\"nanos\": 9"));
    }

    #[test]
    fn display_lists_phases_in_order() {
        let s = PhaseTimers::new().to_string();
        let fetch = s.find("fetch").unwrap();
        let wb = s.find("writeback").unwrap();
        assert!(fetch < wb);
    }
}
