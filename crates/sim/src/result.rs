//! Simulation outputs.

use fua_isa::FuClass;
use fua_power::EnergyLedger;
use fua_stats::{BitPatternProfiler, OccupancyProfiler};
use fua_trace::{Json, ToJson};

/// Branch-predictor statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional branches executed.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
}

impl BranchStats {
    /// Misprediction rate (0 when no branches executed).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

impl ToJson for BranchStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("branches", Json::UInt(self.branches)),
            ("mispredicts", Json::UInt(self.mispredicts)),
            ("mispredict_rate", Json::Float(self.mispredict_rate())),
        ])
    }
}

/// Data-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl ToJson for CacheStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("hits", Json::UInt(self.hits)),
            ("misses", Json::UInt(self.misses)),
            ("hit_rate", Json::Float(self.hit_rate())),
        ])
    }
}

/// Operand-swap counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// Swaps applied by the static hardware rule (Section 4.4).
    pub rule_swaps: u64,
    /// Swaps chosen by cost-based policies (Full Ham / 1-bit Ham).
    pub policy_swaps: u64,
    /// Swaps applied by the multiplier rule.
    pub multiplier_swaps: u64,
}

impl ToJson for SwapStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rule_swaps", Json::UInt(self.rule_swaps)),
            ("policy_swaps", Json::UInt(self.policy_swaps)),
            ("multiplier_swaps", Json::UInt(self.multiplier_swaps)),
        ])
    }
}

/// Everything one simulation run produces.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Elapsed cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub retired: u64,
    /// Whether the program halted (vs hitting the instruction limit).
    pub halted: bool,
    /// Switched input bits and operation counts per FU class.
    pub ledger: EnergyLedger,
    /// Booth-model multiplier energy per FU class (non-zero only for the
    /// multiplier classes; an extension beyond the paper, see DESIGN.md).
    pub booth_energy: [f64; 4],
    /// Per-class issue occupancy (Table 2 inputs).
    pub occupancy: Vec<OccupancyProfiler>,
    /// Per-class operand bit patterns *as issued* (post-swap).
    pub bit_patterns: Vec<BitPatternProfiler>,
    /// Swap counters.
    pub swaps: SwapStats,
    /// Branch-predictor statistics.
    pub branches: BranchStats,
    /// Data-cache statistics.
    pub cache: CacheStats,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Convenience accessor for one class's occupancy profiler.
    pub fn occupancy_of(&self, class: FuClass) -> &OccupancyProfiler {
        &self.occupancy[class.index()]
    }

    /// Convenience accessor for one class's bit-pattern profiler.
    pub fn bit_patterns_of(&self, class: FuClass) -> &BitPatternProfiler {
        &self.bit_patterns[class.index()]
    }

    /// Fractional switched-bit reduction relative to a baseline run, for
    /// one FU class.
    pub fn reduction_vs(&self, baseline: &SimResult, class: FuClass) -> f64 {
        self.ledger.reduction_vs(&baseline.ledger, class)
    }
}
