//! A direct-mapped, write-allocate data cache.

/// Data-cache geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access latency on a hit, in cycles.
    pub hit_latency: u64,
    /// Access latency on a miss (memory round trip), in cycles.
    pub miss_latency: u64,
}

impl Default for CacheConfig {
    /// A 16 KiB direct-mapped cache with 32-byte lines, 1-cycle hits and
    /// 18-cycle misses — SimpleScalar's era-appropriate L1.
    fn default() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            line_bytes: 32,
            hit_latency: 1,
            miss_latency: 18,
        }
    }
}

/// Direct-mapped data cache model: tracks tags only (data correctness is
/// the interpreter's job); returns per-access latency.
///
/// # Examples
///
/// ```
/// use fua_sim::{CacheConfig, DataCache};
///
/// let mut cache = DataCache::new(CacheConfig::default());
/// let cold = cache.access(0x100);
/// let warm = cache.access(0x104); // same line
/// assert!(cold > warm);
/// ```
#[derive(Debug, Clone)]
pub struct DataCache {
    config: CacheConfig,
    tags: Vec<Option<u32>>,
    hits: u64,
    misses: u64,
}

impl DataCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two or the line exceeds
    /// the size.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.size_bytes.is_power_of_two());
        assert!(config.line_bytes.is_power_of_two());
        assert!(config.line_bytes <= config.size_bytes);
        let lines = (config.size_bytes / config.line_bytes) as usize;
        DataCache {
            config,
            tags: vec![None; lines],
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Performs an access, updating tags, and returns its latency.
    pub fn access(&mut self, addr: u32) -> u64 {
        let line = addr / self.config.line_bytes;
        let index = (line as usize) % self.tags.len();
        let tag = line / self.tags.len() as u32;
        if self.tags[index] == Some(tag) {
            self.hits += 1;
            self.config.hit_latency
        } else {
            self.tags[index] = Some(tag);
            self.misses += 1;
            self.config.miss_latency
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all accesses (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_locality_hits() {
        let mut c = DataCache::new(CacheConfig::default());
        assert_eq!(c.access(0), c.config.miss_latency);
        assert_eq!(c.access(4), c.config.hit_latency);
        assert_eq!(c.access(28), c.config.hit_latency);
        assert_eq!(c.access(32), c.config.miss_latency);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conflicting_lines_evict() {
        let cfg = CacheConfig {
            size_bytes: 64,
            line_bytes: 32,
            hit_latency: 1,
            miss_latency: 10,
        };
        let mut c = DataCache::new(cfg);
        c.access(0);
        c.access(64); // maps to the same index (2 lines)
        assert_eq!(c.access(0), 10, "line 0 was evicted");
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = DataCache::new(CacheConfig {
            size_bytes: 3000,
            line_bytes: 32,
            hit_latency: 1,
            miss_latency: 10,
        });
    }
}
