//! The pre-rewrite cycle engine, kept verbatim as a behavioural oracle.
//!
//! [`ReferenceSimulator`] is the pointer-chasing `VecDeque<Entry>` engine
//! the project shipped through PR 8, before the struct-of-arrays hot-loop
//! rewrite (see `docs/PERFORMANCE.md`). It is deliberately *not* fast: its
//! only job is to define the model's cycle-exact semantics so the
//! `hot_loop_equivalence` property test can pin the rewritten
//! [`Simulator`](crate::Simulator) against it — identical retirement
//! streams, energy ledgers and stall digests for every workload × scheme ×
//! swap combination. Production code should always use
//! [`Simulator`](crate::Simulator).

use std::collections::VecDeque;

use fua_isa::{FuClass, Opcode, Program};
use fua_power::booth::BoothModel;
use fua_power::{EnergyLedger, ModulePorts};
use fua_stats::{BitPatternProfiler, OccupancyProfiler};
use fua_trace::{NullSink, Stage, StallReason, SwapKind, TraceEvent, TraceSink};
use fua_vm::{DynOp, Vm, VmError};

use crate::{
    BimodalPredictor, BranchStats, CacheStats, DataCache, MachineConfig, SimResult, SteeringConfig,
    SwapStats,
};

/// How many cycles the engine tolerates with no commit, issue or dispatch
/// before declaring itself wedged (a model bug, not a program property).
const WATCHDOG_CYCLES: u64 = 10_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Dispatched, waiting for operands or an FU.
    Waiting,
    /// Executing or executed; completes at `done_cycle`.
    Issued,
}

#[derive(Debug, Clone)]
struct Entry {
    op: DynOp,
    deps: [Option<u64>; 2],
    state: EntryState,
    done_cycle: u64,
}

/// The pre-rewrite out-of-order engine: one heap-allocated `Entry` per
/// in-flight instruction in a `VecDeque`, with dependence checks that
/// chase producer entries through the window on every issue attempt.
///
/// Behaviour-compatible with [`Simulator`](crate::Simulator) by
/// construction (the rewrite preserved semantics bit-for-bit); the
/// `hot_loop_equivalence` integration test enforces this. See the module
/// docs for why this type exists.
pub struct ReferenceSimulator<S: TraceSink = NullSink> {
    sink: S,
    config: MachineConfig,
    steering: SteeringConfig,
    booth: BoothModel,

    window: VecDeque<Entry>,
    head_serial: u64,
    last_writer: [Option<u64>; 64],
    rs_used: [usize; 4],
    ports: Vec<Vec<ModulePorts>>,
    predictor: BimodalPredictor,
    cache: DataCache,

    cycle: u64,
    retired: u64,
    fetch_resume_cycle: u64,
    // Serial of an unresolved mispredicted branch blocking fetch.
    fetch_blocked_by: Option<u64>,
    // Single-slot skid buffer: an op pulled from the source that could not
    // dispatch because its reservation station was full.
    skid: Option<DynOp>,

    ledger: EnergyLedger,
    booth_energy: [f64; 4],
    occupancy: Vec<OccupancyProfiler>,
    bit_patterns: Vec<BitPatternProfiler>,
    swaps: SwapStats,
    branches: BranchStats,
}

impl ReferenceSimulator<NullSink> {
    /// Creates an untraced reference simulator for one run.
    pub fn new(config: MachineConfig, steering: SteeringConfig) -> Self {
        ReferenceSimulator::with_sink(config, steering, NullSink)
    }
}

impl<S: TraceSink> ReferenceSimulator<S> {
    /// Creates a reference simulator whose pipeline hooks feed `sink`.
    pub fn with_sink(config: MachineConfig, steering: SteeringConfig, sink: S) -> Self {
        config.validate();
        let ports = FuClass::ALL
            .iter()
            .map(|c| vec![ModulePorts::new(); config.modules(*c)])
            .collect();
        let occupancy = FuClass::ALL
            .iter()
            .map(|c| OccupancyProfiler::new(config.modules(*c)))
            .collect();
        let cache = DataCache::new(config.cache);
        ReferenceSimulator {
            sink,
            config,
            steering,
            booth: BoothModel::new(),
            window: VecDeque::new(),
            head_serial: 0,
            last_writer: [None; 64],
            rs_used: [0; 4],
            ports,
            predictor: BimodalPredictor::new(4096),
            cache,
            cycle: 0,
            retired: 0,
            fetch_resume_cycle: 0,
            fetch_blocked_by: None,
            skid: None,
            ledger: EnergyLedger::new(),
            booth_energy: [0.0; 4],
            occupancy,
            bit_patterns: vec![BitPatternProfiler::new(); 4],
            swaps: SwapStats::default(),
            branches: BranchStats::default(),
        }
    }

    /// The attached trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes the simulator, returning the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Runs a program end-to-end: interprets it with [`fua_vm::Vm`] and
    /// feeds the dynamic instruction stream through the pipeline.
    ///
    /// # Errors
    ///
    /// Propagates interpreter faults ([`VmError`]).
    pub fn run_program(&mut self, program: &Program, limit: u64) -> Result<SimResult, VmError> {
        let mut vm = Vm::new(program);
        let mut remaining = limit;
        let result = self.run_source(|| {
            if remaining == 0 {
                return Ok(None);
            }
            remaining -= 1;
            vm.step()
        })?;
        Ok(SimResult {
            halted: vm.halted(),
            ..result
        })
    }

    /// Runs a pre-materialised trace (useful for tests and property
    /// checks).
    pub fn run_trace(&mut self, ops: &[DynOp]) -> SimResult {
        let mut iter = ops.iter().copied();
        self.run_source(|| Ok(iter.next()))
            .expect("a materialised trace cannot fault")
    }

    fn run_source(
        &mut self,
        mut next_op: impl FnMut() -> Result<Option<DynOp>, VmError>,
    ) -> Result<SimResult, VmError> {
        let mut source_done = false;
        let mut idle_cycles = 0u64;
        loop {
            let progress_commit = self.commit();
            let progress_issue = self.issue();
            let progress_fetch = if source_done && self.skid.is_none() {
                0
            } else {
                let fetched = self.fetch(&mut next_op)?;
                if fetched.1 {
                    source_done = true;
                }
                fetched.0
            };

            if S::ENABLED {
                self.sink.record(&TraceEvent::CycleSummary {
                    cycle: self.cycle,
                    window: self.window.len() as u32,
                    issued: progress_issue as u32,
                });
            }
            self.cycle += 1;
            if self.window.is_empty() && source_done && self.skid.is_none() {
                break;
            }

            if progress_commit + progress_issue + progress_fetch == 0 {
                idle_cycles += 1;
                assert!(
                    idle_cycles < WATCHDOG_CYCLES,
                    "pipeline wedged at cycle {}: head {:?}",
                    self.cycle,
                    self.window.front()
                );
            } else {
                idle_cycles = 0;
            }
        }
        Ok(SimResult {
            cycles: self.cycle,
            retired: self.retired,
            halted: false,
            ledger: self.ledger,
            booth_energy: self.booth_energy,
            occupancy: self.occupancy.clone(),
            bit_patterns: self.bit_patterns.clone(),
            swaps: self.swaps,
            branches: self.branches,
            cache: CacheStats {
                hits: self.cache.hits(),
                misses: self.cache.misses(),
            },
        })
    }

    // --- commit ---

    fn commit(&mut self) -> usize {
        let mut committed = 0;
        while committed < self.config.commit_width {
            let head_done = matches!(
                self.window.front(),
                Some(e) if e.state == EntryState::Issued && e.done_cycle <= self.cycle
            );
            if !head_done {
                break;
            }
            let entry = self.window.pop_front().expect("head checked above");
            if S::ENABLED {
                self.sink.record(&TraceEvent::Stage {
                    stage: Stage::Retire,
                    cycle: self.cycle,
                    serial: entry.op.serial,
                    opcode: entry.op.opcode,
                });
            }
            self.head_serial += 1;
            self.retired += 1;
            committed += 1;
        }
        committed
    }

    // --- issue ---

    fn deps_satisfied(&self, entry: &Entry) -> bool {
        entry.deps.iter().all(|dep| match dep {
            None => true,
            Some(serial) => {
                if *serial < self.head_serial {
                    return true; // producer already committed
                }
                let idx = (*serial - self.head_serial) as usize;
                let producer = &self.window[idx];
                producer.state == EntryState::Issued && producer.done_cycle <= self.cycle
            }
        })
    }

    /// Selects this cycle's issue group: oldest-first per class, one
    /// instruction per module, loads/stores contending for the memory
    /// ports. In in-order mode the group is the maximal *prefix* of
    /// unissued instructions that can all go.
    fn select_ready(&self) -> [Vec<usize>; 4] {
        let mut selected: [Vec<usize>; 4] = Default::default();
        let mut mem_ports_left = self.config.mem_ports;
        for idx in 0..self.window.len() {
            let entry = &self.window[idx];
            if entry.state != EntryState::Waiting {
                continue;
            }
            let Some(fu) = entry.op.fu else { continue };
            let ci = fu.class.index();
            let needs_port = entry.op.mem.is_some();
            let issuable = selected[ci].len() < self.config.modules(fu.class)
                && (!needs_port || mem_ports_left > 0)
                && self.deps_satisfied(entry);
            if issuable {
                if needs_port {
                    mem_ports_left -= 1;
                }
                selected[ci].push(idx);
            } else if self.config.in_order_issue {
                break;
            }
        }
        selected
    }

    fn issue(&mut self) -> usize {
        let groups = self.select_ready();
        if S::ENABLED {
            self.record_stalls(&groups);
        }
        let mut issued_total = 0;
        for class in FuClass::ALL {
            issued_total += self.issue_class(class, &groups[class.index()]);
        }
        issued_total
    }

    /// Classifies every *idle* issue slot of this cycle into the
    /// [`StallReason`] taxonomy; mirrors `select_ready`'s walk.
    fn record_stalls(&mut self, groups: &[Vec<usize>; 4]) {
        let mut idle = [0usize; 4];
        let mut width_left = [0usize; 4];
        for class in FuClass::ALL {
            let ci = class.index();
            width_left[ci] = self.config.modules(class);
            idle[ci] = width_left[ci] - groups[ci].len();
        }
        let mut mem_ports_left = self.config.mem_ports;
        let mut prefix_blocked = false;
        for idx in 0..self.window.len() {
            let entry = &self.window[idx];
            if entry.state != EntryState::Waiting {
                continue;
            }
            let Some(fu) = entry.op.fu else { continue };
            let ci = fu.class.index();
            let needs_port = entry.op.mem.is_some();
            let ready = self.deps_satisfied(entry);
            if !prefix_blocked && width_left[ci] > 0 && (!needs_port || mem_ports_left > 0) && ready
            {
                // This candidate was selected for issue.
                if needs_port {
                    mem_ports_left -= 1;
                }
                width_left[ci] -= 1;
                continue;
            }
            let reason = if prefix_blocked {
                StallReason::SteeringDelay
            } else if !ready {
                StallReason::OperandWait
            } else {
                StallReason::FuBusy
            };
            if self.config.in_order_issue {
                prefix_blocked = true;
            }
            if idle[ci] > 0 {
                idle[ci] -= 1;
                let event = TraceEvent::Stall {
                    cycle: self.cycle,
                    class: fu.class,
                    reason,
                    slots: 1,
                    pc: Some(entry.op.static_idx),
                    case: Some(fu.case()),
                };
                self.sink.record(&event);
            }
        }
        let (reason, pc) =
            if self.fetch_blocked_by.is_some() || self.cycle < self.fetch_resume_cycle {
                let culprit = self.fetch_blocked_by.and_then(|serial| {
                    serial
                        .checked_sub(self.head_serial)
                        .and_then(|idx| self.window.get(idx as usize))
                        .map(|e| e.op.static_idx)
                });
                (StallReason::BranchRecovery, culprit)
            } else if self.window.len() >= self.config.rob_size {
                (
                    StallReason::RobFull,
                    self.window.front().map(|e| e.op.static_idx),
                )
            } else if let Some(op) = &self.skid {
                (StallReason::RsFull, Some(op.static_idx))
            } else {
                (StallReason::FetchStarved, None)
            };
        for class in FuClass::ALL {
            let ci = class.index();
            if idle[ci] > 0 {
                let event = TraceEvent::Stall {
                    cycle: self.cycle,
                    class,
                    reason,
                    slots: idle[ci] as u32,
                    pc,
                    case: None,
                };
                self.sink.record(&event);
            }
        }
    }

    fn issue_class(&mut self, class: FuClass, selected: &[usize]) -> usize {
        let modules = self.config.modules(class);
        debug_assert!(selected.len() <= modules);
        self.occupancy[class.index()].record(selected.len());
        if selected.is_empty() {
            return 0;
        }

        // Build the FU operations, applying the static swap rules.
        let mut ops: Vec<fua_vm::FuOp> = selected
            .iter()
            .map(|&i| self.window[i].op.fu.expect("selected ops have FUs"))
            .collect();
        if let Some(rule) = self.steering.swap_rule(class) {
            let rule = *rule;
            for (op, &i) in ops.iter_mut().zip(selected) {
                if rule.apply(op) {
                    self.swaps.rule_swaps += 1;
                    if S::ENABLED {
                        let serial = self.window[i].op.serial;
                        self.sink.record(&TraceEvent::OperandSwap {
                            cycle: self.cycle,
                            serial,
                            class,
                            kind: SwapKind::Rule,
                        });
                    }
                }
            }
        }
        if matches!(class, FuClass::IntMul | FuClass::FpMul) {
            if let Some(rule) = self.steering.multiplier_swap {
                for (op, &i) in ops.iter_mut().zip(selected) {
                    let opcode = self.window[i].op.opcode;
                    if matches!(opcode, Opcode::Mul | Opcode::FMul) && rule.apply(op) {
                        self.swaps.multiplier_swaps += 1;
                        if S::ENABLED {
                            let serial = self.window[i].op.serial;
                            self.sink.record(&TraceEvent::OperandSwap {
                                cycle: self.cycle,
                                serial,
                                class,
                                kind: SwapKind::Multiplier,
                            });
                        }
                    }
                }
            }
        }

        // Steer: duplicated classes consult the policy, single-module
        // classes trivially use module 0.
        let choices: Vec<fua_steer::ModuleChoice> = if modules > 1 {
            let policy = self
                .steering
                .policy_mut(class)
                .expect("duplicated classes have a policy");
            policy.assign(&ops, &self.ports[class.index()])
        } else {
            ops.iter()
                .map(|_| fua_steer::ModuleChoice {
                    module: 0,
                    swap: false,
                })
                .collect()
        };
        if cfg!(debug_assertions) {
            fua_steer::validate_choices(&ops, modules, &choices);
        }

        // Latch, charge energy, schedule completion.
        for ((mut op, choice), &win_idx) in ops.into_iter().zip(choices).zip(selected) {
            // The case the steering policy saw (post rule-swap,
            // pre policy-swap) — what a Steer trace event reports.
            let steer_case = op.case();
            if choice.swap {
                debug_assert!(op.commutative);
                op = op.swapped();
                self.swaps.policy_swaps += 1;
            }
            let ports = &mut self.ports[class.index()][choice.module];
            let bits = ports.latch(op.op1, op.op2);
            self.ledger.charge(class, bits);
            self.bit_patterns[class.index()].record(&op);

            let entry = &mut self.window[win_idx];
            let opcode = entry.op.opcode;
            let serial = entry.op.serial;
            let entry_pc = entry.op.static_idx;
            if matches!(opcode, Opcode::Mul | Opcode::FMul) {
                // Booth activity model (extension; see DESIGN.md). The
                // latch already advanced, so reconstruct prev from cost.
                self.booth_energy[class.index()] += self.booth.pp_weight
                    * fua_power::booth::nonzero_booth_digits(
                        fua_power::booth::significand(op.op2).0,
                        fua_power::booth::significand(op.op2).1,
                    ) as f64
                    * op.op1.power_width() as f64
                    + self.booth.sw_weight * bits as f64;
            }

            let mut latency = self.config.latency(opcode);
            let mut cache_event = None;
            if let Some(mem) = entry.op.mem {
                let mem_latency = self.cache.access(mem.addr);
                if mem.is_load {
                    latency += mem_latency;
                }
                if S::ENABLED {
                    cache_event = Some(TraceEvent::Cache {
                        cycle: self.cycle,
                        serial,
                        addr: mem.addr,
                        hit: mem_latency == self.cache.config().hit_latency,
                        latency: mem_latency,
                    });
                }
            }
            entry.state = EntryState::Issued;
            entry.done_cycle = self.cycle + latency;
            let done_cycle = entry.done_cycle;
            self.rs_used[class.index()] -= 1;

            // A resolved mispredicted branch un-blocks fetch.
            if self.fetch_blocked_by == Some(serial) {
                self.fetch_blocked_by = None;
                self.fetch_resume_cycle = done_cycle + self.config.mispredict_penalty;
            }

            if S::ENABLED {
                let module = choice.module as u8;
                self.sink.record(&TraceEvent::Stage {
                    stage: Stage::Issue,
                    cycle: self.cycle,
                    serial,
                    opcode,
                });
                if modules > 1 {
                    self.sink.record(&TraceEvent::Steer {
                        cycle: self.cycle,
                        serial,
                        class,
                        case: steer_case,
                        module,
                        swap: choice.swap,
                        cost_bits: bits,
                    });
                }
                if choice.swap {
                    self.sink.record(&TraceEvent::OperandSwap {
                        cycle: self.cycle,
                        serial,
                        class,
                        kind: SwapKind::Policy,
                    });
                }
                self.sink.record(&TraceEvent::Energy {
                    cycle: self.cycle,
                    serial,
                    pc: entry_pc,
                    class,
                    module,
                    case: steer_case,
                    bits,
                });
                self.sink.record(&TraceEvent::Stall {
                    cycle: self.cycle,
                    class,
                    reason: StallReason::Issued,
                    slots: 1,
                    pc: Some(entry_pc),
                    case: Some(steer_case),
                });
                if let Some(event) = cache_event {
                    self.sink.record(&event);
                }
                self.sink.record(&TraceEvent::Execute {
                    cycle: self.cycle,
                    serial,
                    class,
                    module,
                    latency,
                    opcode,
                });
                self.sink.record(&TraceEvent::Stage {
                    stage: Stage::Writeback,
                    cycle: done_cycle,
                    serial,
                    opcode,
                });
            }
        }
        selected.len()
    }

    // --- fetch/dispatch ---

    /// Returns (dispatched count, source exhausted).
    fn fetch(
        &mut self,
        next_op: &mut impl FnMut() -> Result<Option<DynOp>, VmError>,
    ) -> Result<(usize, bool), VmError> {
        if self.fetch_blocked_by.is_some() || self.cycle < self.fetch_resume_cycle {
            return Ok((0, false));
        }
        let mut dispatched = 0;
        while dispatched < self.config.fetch_width {
            if self.window.len() >= self.config.rob_size {
                break;
            }
            // Drain the skid buffer (an op stalled on a full reservation
            // station last cycle) before pulling from the source.
            let op = match self.skid.take() {
                Some(op) => op,
                None => match next_op()? {
                    Some(op) => {
                        if S::ENABLED {
                            self.sink.record(&TraceEvent::Stage {
                                stage: Stage::Fetch,
                                cycle: self.cycle,
                                serial: op.serial,
                                opcode: op.opcode,
                            });
                        }
                        op
                    }
                    None => return Ok((dispatched, true)),
                },
            };
            if let Some(fu) = op.fu {
                if self.rs_used[fu.class.index()] >= self.config.rs_entries {
                    // Structural stall: park the op and retry next cycle.
                    self.skid = Some(op);
                    break;
                }
                self.rs_used[fu.class.index()] += 1;
            }
            self.dispatch(op);
            dispatched += 1;
            if self.fetch_blocked_by.is_some() {
                break; // mispredicted branch ends the fetch group
            }
        }
        Ok((dispatched, false))
    }

    fn dispatch(&mut self, op: DynOp) {
        if S::ENABLED {
            self.sink.record(&TraceEvent::Stage {
                stage: Stage::Decode,
                cycle: self.cycle,
                serial: op.serial,
                opcode: op.opcode,
            });
        }
        let deps = [
            op.srcs[0].and_then(|r| self.last_writer[r.dense_index()]),
            op.srcs[1].and_then(|r| self.last_writer[r.dense_index()]),
        ];
        if S::ENABLED {
            self.sink.record(&TraceEvent::Dependence {
                cycle: self.cycle,
                serial: op.serial,
                pc: op.static_idx,
                dep1: deps[0],
                dep2: deps[1],
            });
        }
        if let Some(dst) = op.dst {
            self.last_writer[dst.dense_index()] = Some(op.serial);
        }
        if let Some(branch) = op.branch {
            if !branch.unconditional {
                self.branches.branches += 1;
                let predicted = self.predictor.predict(op.static_idx);
                self.predictor.update(op.static_idx, branch.taken);
                if S::ENABLED {
                    self.sink.record(&TraceEvent::Branch {
                        cycle: self.cycle,
                        serial: op.serial,
                        taken: branch.taken,
                        predicted,
                    });
                }
                if predicted != branch.taken {
                    self.branches.mispredicts += 1;
                    self.fetch_blocked_by = Some(op.serial);
                }
            }
        }
        let state = if op.fu.is_some() {
            EntryState::Waiting
        } else {
            EntryState::Issued // no FU: completes next cycle
        };
        let done_cycle = self.cycle + 1;
        self.window.push_back(Entry {
            op,
            deps,
            state,
            done_cycle,
        });
    }
}
