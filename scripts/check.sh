#!/usr/bin/env bash
# Full local gate: format, lints, build, and the whole test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --all-targets --features json -- -D warnings
cargo build --release
cargo test --workspace -q
cargo test --workspace -q --features json
echo "all checks passed"
