#!/usr/bin/env bash
# Full local gate: format, lints, build, the whole test suite, and the
# BENCH regression gate against the committed seed baseline.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --all-targets --features json -- -D warnings
# The facade's `trace` feature only gates CLI surface; build it both
# ways so neither half of the cfg matrix rots.
cargo clippy --workspace --all-targets --no-default-features -- -D warnings
cargo clippy --workspace --all-targets --no-default-features --features trace -- -D warnings
cargo build --release
cargo test --workspace -q
cargo test --workspace -q --features json
cargo test --workspace -q --no-default-features

# Docs gate: every public item is documented (deny(missing_docs)) and
# rustdoc itself is warning-clean (broken intra-doc links, bad HTML).
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Observability gate: a fresh quick-suite BENCH artifact must pass the
# tolerance-banded comparison against the committed seed baseline.
repo="$(pwd)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
(
  cd "$tmpdir"
  "$repo/target/release/fua" bench-suite --tag check
  "$repo/target/release/fua" report \
    --baseline "$repo/BENCH_seed.json" --current BENCH_check.json
)

# Parallel-determinism gate: a --jobs 4 artifact must diff to exactly
# zero findings against the serial (--jobs 1) artifact of the same
# configuration — byte-identical model output, wall-clock aside.
(
  cd "$tmpdir"
  "$repo/target/release/fua" bench-suite --jobs 1 --tag serial
  "$repo/target/release/fua" bench-suite --jobs 4 --tag parallel
  out="$("$repo/target/release/fua" report \
    --baseline BENCH_serial.json --current BENCH_parallel.json)"
  echo "$out"
  if [[ "$out" != *"PASS: 0 finding(s)"* ]]; then
    echo "serial-vs-parallel diff produced findings" >&2
    exit 1
  fi
)

# Attribution-determinism gate: the energy profiler's flamegraph and
# site table must be byte-identical between --jobs 1 and --jobs 4.
(
  cd "$tmpdir"
  "$repo/target/release/fua" profile-energy all --jobs 1 \
    --flame flame-serial.txt --json > attr-serial.json
  "$repo/target/release/fua" profile-energy all --jobs 4 \
    --flame flame-parallel.txt --json > attr-parallel.json
  cmp flame-serial.txt flame-parallel.txt
  cmp attr-serial.json attr-parallel.json
)

# Cycle-attribution gates: the stall partition must account every
# issue slot of every cycle for every workload (profile-cycles exits
# nonzero on an inexact partition), and the profiler's flamegraph,
# JSON slot table and critical path must be byte-identical between
# --jobs 1 and --jobs 4.
(
  cd "$tmpdir"
  "$repo/target/release/fua" profile-cycles all --jobs 1 --critical-path \
    --flame cycles-flame-serial.txt --json > cycles-serial.json
  "$repo/target/release/fua" profile-cycles all --jobs 4 --critical-path \
    --flame cycles-flame-parallel.txt --json > cycles-parallel.json
  cmp cycles-flame-serial.txt cycles-flame-parallel.txt
  cmp cycles-serial.json cycles-parallel.json
)

# Stall-partition gate: a BENCH artifact whose stall digest violates
# the exact-partition invariant must fail the report gate.
(
  cd "$tmpdir"
  awk '
    /"stalls": \{/ { in_stalls = 1 }
    in_stalls && /"exact": true/ { sub(/"exact": true/, "\"exact\": false"); in_stalls = 0 }
    { print }
  ' BENCH_check.json > BENCH_stallcorrupt.json
  if "$repo/target/release/fua" report \
      --baseline "$repo/BENCH_seed.json" --current BENCH_stallcorrupt.json; then
    echo "inexact stall partition unexpectedly passed the gate" >&2
    exit 1
  fi
)

# Estimator gates: static bounds must be byte-identical across job
# counts, and must dominate the measured attribution for every
# workload x scheme (nonzero exit on any violated bound).
(
  cd "$tmpdir"
  "$repo/target/release/fua" estimate all --jobs 1 --json > est-serial.json
  "$repo/target/release/fua" estimate all --jobs 4 --json > est-parallel.json
  cmp est-serial.json est-parallel.json
  "$repo/target/release/fua" estimate all --verify --jobs 4 > estimator-precision.txt
  cat estimator-precision.txt
)

# Run-store and trends gates: two reduced-scale runs recorded to the
# store must trend clean; a third run seeded with a regressed headline
# (edited offline, re-added via `store put`) must fail `trends` and
# `report --store`; stored artifacts must survive `store gc` byte-
# identically.
(
  cd "$tmpdir"
  "$repo/target/release/fua" bench-suite --limit 1500 --store --tag t1
  "$repo/target/release/fua" bench-suite --limit 1500 --store --tag t2
  "$repo/target/release/fua" trends | tee trends-clean.txt
  grep -q "PASS: 0 finding(s)" trends-clean.txt
  "$repo/target/release/fua" trends --json > trends.json

  "$repo/target/release/fua" store show 2 > shown.json
  sed 's/"ialu_pct": [0-9.eE+-]*,/"ialu_pct": 1.0,/' shown.json > regressed.json
  "$repo/target/release/fua" store put regressed.json
  if "$repo/target/release/fua" trends > trends-regressed.txt; then
    echo "a regressed newest run unexpectedly passed trends" >&2
    exit 1
  fi
  grep -q "trend-regression" trends-regressed.txt
  if "$repo/target/release/fua" report --store; then
    echo "a regressed stored run unexpectedly passed report --store" >&2
    exit 1
  fi

  "$repo/target/release/fua" store gc
  "$repo/target/release/fua" store show 2 > reshown.json
  cmp shown.json reshown.json
)

# Throughput gates (mirrors the CI `throughput` job, see
# docs/PERFORMANCE.md). The simulated-MHz rate is gated through a
# dedicated run store: two fresh runs must trend clean and pass the
# slowdown-only sim-rate band. The criterion hot-loop bench (rewrite
# vs reference speedup assertion) additionally runs when the registry
# is reachable; crates/bench is workspace-excluded because criterion
# cannot be resolved offline, so the smoke is skipped — not failed —
# in that case.
(
  cd "$tmpdir"
  mkdir -p rate && cd rate
  "$repo/target/release/fua" bench-suite --store --store-dir .rate-store --tag rate1
  "$repo/target/release/fua" bench-suite --store --store-dir .rate-store --tag rate2
  "$repo/target/release/fua" report --store --store-dir .rate-store
  "$repo/target/release/fua" trends --store-dir .rate-store | tee rate-trends.txt
  grep -q "PASS: 0 finding(s)" rate-trends.txt
)
if cargo metadata --manifest-path crates/bench/Cargo.toml \
    --format-version 1 > /dev/null 2>&1; then
  cargo bench --manifest-path crates/bench/Cargo.toml --bench hot_loop -- --test
else
  echo "note: criterion unresolvable (offline); skipping hot-loop bench smoke" >&2
fi

# Progress-isolation gate: --progress must not change a single stdout
# byte (heartbeat lines are stderr-only).
(
  cd "$tmpdir"
  "$repo/target/release/fua" figure4 ialu --limit 2000 > fig-plain.txt
  "$repo/target/release/fua" figure4 ialu --limit 2000 --progress > fig-progress.txt \
    2> fig-progress-err.txt
  cmp fig-plain.txt fig-progress.txt
  grep -q "progress:" fig-progress-err.txt
)

# Harness self-observability gates. The zero-allocation steady-state
# gate runs inside the suite above; run it by name so a hot-loop heap
# regression fails with its own headline. Then the counting-allocator
# build must lint clean and produce a harness-report whose stdout is
# byte-identical between --jobs 1 and --jobs 4 while emitting the
# Perfetto timeline, folded stacks and OpenMetrics exposition.
cargo test -q --test alloc_gate
cargo clippy --workspace --all-targets --features harness-obs -- -D warnings
cargo build --release --features harness-obs
(
  cd "$tmpdir"
  "$repo/target/release/fua" harness-report --jobs 1 \
    --out harness-timeline.json --openmetrics harness.om \
    --flame harness.folded > harness-serial.txt
  "$repo/target/release/fua" harness-report --jobs 4 > harness-parallel.txt
  cmp harness-serial.txt harness-parallel.txt
  grep -q "alloc(s)" harness-serial.txt
  grep -q "# EOF" harness.om
)
# Leave the default-feature release binary in target/ for callers.
cargo build --release
echo "all checks passed"
