#!/usr/bin/env bash
# Full local gate: format, lints, build, and the whole test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --all-targets --features json -- -D warnings
# The facade's `trace` feature only gates CLI surface; build it both
# ways so neither half of the cfg matrix rots.
cargo clippy --workspace --all-targets --no-default-features -- -D warnings
cargo clippy --workspace --all-targets --no-default-features --features trace -- -D warnings
cargo build --release
cargo test --workspace -q
cargo test --workspace -q --features json
cargo test --workspace -q --no-default-features
echo "all checks passed"
