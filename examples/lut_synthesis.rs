//! Dumps the built steering LUTs (home cases, single- and dual-issue
//! entries) and regenerates the paper's Section-5 hardware-cost estimate
//! (58 gates / 6 levels for a 4-bit LUT with 8 reservation-station
//! entries, 130 / 8 with 32).
//!
//! Run with: `cargo run --release --example lut_synthesis`

use fua::core::synthesis_report;
use fua::isa::Case;
use fua::stats::CaseProfile;
use fua::steer::{LutBuilder, PAPER_FPAU_OCCUPANCY, PAPER_IALU_OCCUPANCY};

fn main() {
    for (name, profile, width, occupancy) in [
        (
            "IALU",
            CaseProfile::paper_ialu(),
            32u32,
            &PAPER_IALU_OCCUPANCY,
        ),
        (
            "FPAU",
            CaseProfile::paper_fpau(),
            fua::isa::FP_MANTISSA_BITS,
            &PAPER_FPAU_OCCUPANCY,
        ),
    ] {
        let lut = LutBuilder::new(profile, width)
            .occupancy(occupancy)
            .modules(4)
            .build(2);
        println!("{name} 4-bit LUT — homes: {:?}", lut.homes());
        for c in Case::ALL {
            println!("  single {c} -> module {}", lut.entry(lut.encode(&[c]))[0]);
        }
        for c0 in Case::ALL {
            for c1 in Case::ALL {
                let e = lut.entry(lut.encode(&[c0, c1]));
                println!("  pair {c0},{c1} -> modules {},{}", e[0], e[1]);
            }
        }
        println!();
    }

    println!("{}", synthesis_report().render());
}
