//! Quickstart: assemble a small program, run it through the out-of-order
//! machine twice — once with the baseline first-come-first-serve router,
//! once with the paper's 4-bit-LUT steering + hardware operand swapping —
//! and compare the switched-capacitance energy of the integer ALUs.
//!
//! Run with: `cargo run --release --example quickstart`

use fua::isa::{FuClass, IntReg, ProgramBuilder};
use fua::sim::{MachineConfig, Simulator, SteeringConfig};
use fua::steer::SteeringKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small mixed kernel: a counting loop (small positive values), a
    // signed accumulation (negative values) and some address arithmetic —
    // three distinct operand "streams" for the steering to separate.
    let (i, n, acc, neg, addr, tmp) = (
        IntReg::new(1),
        IntReg::new(2),
        IntReg::new(3),
        IntReg::new(4),
        IntReg::new(5),
        IntReg::new(6),
    );
    let mut b = ProgramBuilder::new();
    let buf = b.data_words(&[7; 64]);
    let top = b.new_label();
    b.li(n, 5_000);
    b.li(i, 0);
    b.li(acc, 0);
    b.li(neg, -1);
    b.bind(top);
    b.addi(i, i, 1); // small positive stream
    b.sub(acc, acc, i); // negative stream
    b.add(neg, neg, acc); // negative stream
    b.andi(addr, i, 63);
    b.slli(addr, addr, 2);
    b.addi(addr, addr, buf);
    b.lw(tmp, addr, 0); // address stream (AGU)
    b.add(acc, acc, tmp);
    b.sub(tmp, n, i);
    b.bgtz(tmp, top);
    b.halt();
    let program = b.build()?;

    // Baseline machine: FCFS routing, no swapping.
    let mut baseline_sim =
        Simulator::new(MachineConfig::paper_default(), SteeringConfig::original());
    let baseline = baseline_sim.run_program(&program, 1_000_000)?;

    // The paper's recommended design point.
    let mut steered_sim = Simulator::new(
        MachineConfig::paper_default(),
        SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true),
    );
    let steered = steered_sim.run_program(&program, 1_000_000)?;

    println!(
        "retired {} instructions in {} cycles (IPC {:.2})",
        baseline.retired,
        baseline.cycles,
        baseline.ipc()
    );
    println!(
        "IALU switched bits: baseline {}, 4-bit LUT + hw swap {}",
        baseline.ledger.switched_bits(FuClass::IntAlu),
        steered.ledger.switched_bits(FuClass::IntAlu),
    );
    println!(
        "energy reduction: {:.1}%  (hardware swaps applied: {})",
        100.0 * steered.reduction_vs(&baseline, FuClass::IntAlu),
        steered.swaps.rule_swaps,
    );
    Ok(())
}
