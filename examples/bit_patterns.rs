//! Regenerates the paper's measurement tables: Table 1 (operand bit
//! patterns of the IALU and FPAU), Table 2 (modules used per busy cycle)
//! and Table 3 (multiplication bit patterns), by profiling the whole
//! 15-workload suite on the unmodified machine.
//!
//! Run with: `cargo run --release --example bit_patterns`

use fua::core::{profile_suite, ExperimentConfig};

fn main() {
    let profile = profile_suite(&ExperimentConfig::full());
    println!("{}", profile.table1());
    println!("{}", profile.table2());
    println!("{}", profile.table3());
}
