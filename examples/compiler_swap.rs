//! Demonstrates the profile-guided compiler swap pass (Section 4.4) on a
//! real workload: profiles `ijpeg`, rewrites the binary, verifies that
//! the rewritten program computes the same result, and measures the
//! energy effect on the steered machine.
//!
//! Run with: `cargo run --release --example compiler_swap`

use fua::isa::FuClass;
use fua::sim::{MachineConfig, Simulator, SteeringConfig};
use fua::steer::SteeringKind;
use fua::swap::CompilerSwapPass;
use fua::vm::Vm;
use fua::workloads::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = by_name("ijpeg", 1).expect("bundled workload");
    let outcome = CompilerSwapPass::new().run(&workload.program)?;
    println!(
        "compiler swap pass on `{}`: {} of {} swappable static \
         instructions reordered ({:.0}%)",
        workload.name,
        outcome.swapped.len(),
        outcome.considered,
        100.0 * outcome.swap_rate()
    );
    for &idx in outcome.swapped.iter().take(8) {
        println!(
            "  [{idx:4}] {}   ->   {}",
            workload.program.inst(idx),
            outcome.program.inst(idx)
        );
    }

    // Semantics are preserved: both programs halt with identical memory.
    let mut vm_a = Vm::new(&workload.program);
    let a = vm_a.run(10_000_000)?;
    let mut vm_b = Vm::new(&outcome.program);
    let b = vm_b.run(10_000_000)?;
    assert!(a.halted && b.halted);
    assert_eq!(a.ops.len(), b.ops.len());
    println!(
        "semantics check: both programs retire {} instructions",
        a.ops.len()
    );

    // Energy effect on the steered machine.
    let run = |program| -> Result<u64, fua::vm::VmError> {
        let mut sim = Simulator::new(
            MachineConfig::paper_default(),
            SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true),
        );
        Ok(sim
            .run_program(program, 500_000)?
            .ledger
            .switched_bits(FuClass::IntAlu))
    };
    let before = run(&workload.program)?;
    let after = run(&outcome.program)?;
    println!(
        "IALU switched bits with 4-bit LUT + hw swap: {before} -> {after} \
         ({:+.2}% change)",
        100.0 * (after as f64 - before as f64) / before as f64
    );
    Ok(())
}
