//! Regenerates the paper's Figure 4: energy reduction of every steering
//! scheme × swap variant, for the IALU (integer suite) and the FPAU (FP
//! suite).
//!
//! Run with: `cargo run --release --example steering_comparison`
//! (takes a minute or two: 2 × 19 full pipeline simulations of the suite).

use fua::core::{figure4, headline, ExperimentConfig, Unit};

fn main() {
    let config = ExperimentConfig::full();

    let fig_a = figure4(Unit::Ialu, &config);
    println!("{}", fig_a.render());
    println!();
    let fig_b = figure4(Unit::Fpau, &config);
    println!("{}", fig_b.render());

    let h = headline(&config);
    println!();
    println!(
        "Headline (paper: ~17% IALU / ~18% FPAU / ~26% IALU+compiler):\n\
         measured: {:.1}% IALU / {:.1}% FPAU / {:.1}% IALU+compiler",
        h.ialu_pct, h.fpau_pct, h.ialu_compiler_pct
    );
}
