//! Regenerates the paper's Figure 1: the worked example where routing the
//! second cycle's three operations to *different* functional units than
//! arrival order cuts the switched input bits substantially.
//!
//! Run with: `cargo run --release --example routing_example`

use fua::core::routing_example;

fn main() {
    println!("{}", routing_example().render());
}
