//! Tours the `fua-analysis` stack on one workload: static
//! information-bit predictions from abstract interpretation, the
//! program linter, and the profile-free static swap pass compared
//! head-to-head against the profile-guided one.
//!
//! Run with: `cargo run --release --example static_analysis`

use fua::analysis::{lint_program, InfoBitAnalysis};
use fua::core::{static_swap_comparison, ExperimentConfig, Unit};
use fua::swap::StaticSwapPass;

fn main() {
    let w = fua::workloads::by_name("cc1", 1).expect("bundled workload");

    // 1. Predict each instruction's information bits without running it.
    let analysis = InfoBitAnalysis::run(&w.program);
    let (with_fu, definite) = analysis.coverage();
    println!(
        "{}: {definite}/{with_fu} FU instructions have a statically definite case",
        w.name
    );

    // 2. Lint the kernel (uninit reads, dead writes, unreachable code...).
    let lints = lint_program(&w.program);
    if lints.is_empty() {
        println!("{}: lints clean", w.name);
    } else {
        for l in &lints {
            println!("{}: {l}", w.name);
        }
    }

    // 3. Canonicalise commutative operand order from the predictions
    //    alone — no profiling run, so no input sensitivity.
    let out = StaticSwapPass::new().run(&w.program);
    println!(
        "{}: static pass swapped {} of {} considered sites \
         ({} mixed-case, {} density)\n",
        w.name,
        out.swapped.len(),
        out.considered,
        out.case_swaps,
        out.density_swaps
    );

    // 4. The suite-wide head-to-head against the profile-guided pass.
    let comparison = static_swap_comparison(Unit::Ialu, &ExperimentConfig::quick());
    println!("{}", comparison.render());
}
