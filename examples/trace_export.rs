//! Observability walkthrough: run one workload with every sink attached
//! — Chrome/Perfetto exporter, bounded ring buffer, metrics recorder —
//! then write the Perfetto JSON and print the tail and the snapshot.
//!
//! Run with: `cargo run --release --example trace_export`
//! Then load `target/trace_compress.json` at <https://ui.perfetto.dev>.

use fua::core::observed_scheme;
use fua::isa::FuClass;
use fua::sim::{MachineConfig, Simulator};
use fua::trace::{ChromeTraceSink, MetricsRecorder, RingBufferSink};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = fua::workloads::by_name("compress", 1).expect("bundled");

    // Sinks fan out as nested pairs; each receives every event in order.
    let mut sim = Simulator::with_sink(
        MachineConfig::paper_default(),
        observed_scheme(), // the paper's 4-bit LUT + hardware swapping
        (
            ChromeTraceSink::new(),
            (RingBufferSink::new(1024), MetricsRecorder::new()),
        ),
    );
    let result = sim.run_program(&workload.program, 20_000)?;
    let (chrome, (ring, recorder)) = sim.into_sink();

    println!(
        "{}: retired {} in {} cycles (IPC {:.2}); {} events recorded",
        workload.name,
        result.retired,
        result.cycles,
        result.ipc(),
        ring.recorded()
    );

    let path = "target/trace_compress.json";
    std::fs::write(path, chrome.into_json().compact())?;
    println!("wrote {path} — load it at https://ui.perfetto.dev\n");

    println!("last 5 events in the ring:");
    for event in ring.tail(5) {
        println!("  {event:?}");
    }

    let registry = recorder.into_registry();
    println!("\nmetrics snapshot:\n{registry}");

    // The metrics partition the energy ledger exactly.
    let recorded = registry.sum_counters(&format!("switched_bits.{}.", FuClass::IntAlu));
    assert_eq!(recorded, result.ledger.switched_bits(FuClass::IntAlu));
    println!("per-module counters sum to the IALU ledger total: {recorded} switched bits");
    Ok(())
}
