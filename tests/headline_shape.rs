//! Integration: the paper's headline *shape* must hold end-to-end at a
//! reduced experiment scale (absolute magnitudes are workload-dependent
//! and recorded in EXPERIMENTS.md; ordering and sign are the invariants).

use fua::core::{figure4, ExperimentConfig, Unit};

fn config() -> ExperimentConfig {
    ExperimentConfig {
        inst_limit: 50_000,
        ..ExperimentConfig::full()
    }
}

#[test]
fn ialu_scheme_ordering_matches_the_paper() {
    let fig = figure4(Unit::Ialu, &config());
    let hw = |name: &str| fig.row(name).expect("row").hardware_pct;

    // Figure 4(a): Full Ham bounds 1-bit Ham bounds the LUTs; wider
    // vectors help; everything beats Original.
    assert!(hw("Full Ham") >= hw("1-bit Ham") - 0.5);
    assert!(hw("1-bit Ham") >= hw("8-bit LUT") - 0.5);
    assert!(hw("8-bit LUT") >= hw("4-bit LUT") - 0.5);
    assert!(hw("4-bit LUT") >= hw("2-bit LUT") - 0.5);
    assert!(
        hw("4-bit LUT") > 3.0,
        "4-bit LUT too weak: {:.1}%",
        hw("4-bit LUT")
    );
    assert!(hw("Original") < hw("4-bit LUT"));
}

#[test]
fn ialu_swapping_is_additive() {
    let fig = figure4(Unit::Ialu, &config());
    let row = fig.row("4-bit LUT").expect("row");
    // Hardware swapping adds on top of steering; compiler swapping adds
    // on top of hardware swapping (paper Section 6, insights 1 and 4).
    assert!(
        row.hardware_pct > row.base_pct + 1.0,
        "hw swap gained only {:.1} -> {:.1}",
        row.base_pct,
        row.hardware_pct
    );
    assert!(
        row.hardware_compiler_pct >= row.hardware_pct - 0.3,
        "compiler swap regressed: {:.1} -> {:.1}",
        row.hardware_pct,
        row.hardware_compiler_pct
    );
    // Swapping also benefits the unmodified machine (the paper: "the
    // gain for Original is not zero").
    let original = fig.row("Original").expect("row");
    assert!(original.hardware_pct > 0.0);
}

#[test]
fn fpau_is_insensitive_to_lut_width() {
    let fig = figure4(Unit::Fpau, &config());
    let base = |name: &str| fig.row(name).expect("row").base_pct;
    // Paper insight 5: the FPAU barely distinguishes 4- and 8-bit LUTs
    // because multi-issue is rare (Table 2).
    let gap = (base("8-bit LUT") - base("4-bit LUT")).abs();
    assert!(gap < 2.0, "FPAU 4-vs-8-bit gap too large: {gap:.1}");
    // And both sit near the 1-bit Ham bound.
    assert!(base("4-bit LUT") > 0.5 * base("1-bit Ham"));
}

#[test]
fn fpau_hardware_swapping_is_ineffective() {
    // Paper insight 2: FP steering gains come from the base method;
    // hardware swapping adds little (and may even cost a little when it
    // merges the conversion stream into the adder stream).
    let fig = figure4(Unit::Fpau, &config());
    let row = fig.row("4-bit LUT").expect("row");
    let delta = row.hardware_pct - row.base_pct;
    assert!(
        delta.abs() < 3.0,
        "FPAU hw swap should be near-neutral, got {delta:+.1} points"
    );
    assert!(row.base_pct > 2.0, "FPAU steering itself must save energy");
}
