//! Integration: the `--progress` heartbeat must be observable on
//! stderr and provably absent everywhere else — stdout byte-identical
//! with and without the flag, and recorded artifacts indistinguishable
//! from silent runs (the comparison gate sees zero regressions).

use std::path::Path;
use std::process::Command;

fn fua_in(dir: &Path, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_fua"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn fua binary")
}

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("fua-progress-test-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn progress_lines_go_to_stderr_and_stdout_is_byte_identical() {
    let tmp = TempDir::new("figure4");
    let silent = fua_in(&tmp.0, &["figure4", "ialu", "--limit", "2000"]);
    let chatty = fua_in(
        &tmp.0,
        &["figure4", "ialu", "--limit", "2000", "--progress"],
    );
    assert!(silent.status.success() && chatty.status.success());

    assert_eq!(
        silent.stdout, chatty.stdout,
        "--progress must not change a single stdout byte"
    );
    let silent_err = String::from_utf8_lossy(&silent.stderr);
    let chatty_err = String::from_utf8_lossy(&chatty.stderr);
    assert!(
        !silent_err.contains("progress:"),
        "no heartbeat without the flag; stderr: {silent_err}"
    );
    assert!(
        chatty_err.contains("progress:"),
        "--progress must emit heartbeat lines; stderr: {chatty_err}"
    );
}

#[test]
fn quiet_suppresses_the_heartbeat_and_stdout_is_byte_identical() {
    let tmp = TempDir::new("quiet");
    let silent = fua_in(&tmp.0, &["figure4", "ialu", "--limit", "2000"]);
    let quieted = fua_in(
        &tmp.0,
        &[
            "figure4",
            "ialu",
            "--limit",
            "2000",
            "--progress",
            "--quiet",
        ],
    );
    assert!(silent.status.success() && quieted.status.success());

    assert_eq!(
        silent.stdout, quieted.stdout,
        "--quiet must not change a single stdout byte"
    );
    let err = String::from_utf8_lossy(&quieted.stderr);
    assert!(
        !err.contains("progress:"),
        "--quiet must win over --progress; stderr: {err}"
    );
}

#[test]
fn artifacts_recorded_under_progress_are_indistinguishable() {
    let tmp = TempDir::new("bench");
    let silent = fua_in(
        &tmp.0,
        &["bench-suite", "--limit", "1500", "--tag", "silent"],
    );
    let chatty = fua_in(
        &tmp.0,
        &[
            "bench-suite",
            "--limit",
            "1500",
            "--tag",
            "chatty",
            "--progress",
        ],
    );
    assert!(silent.status.success() && chatty.status.success());
    assert!(
        silent.stdout.is_empty() && chatty.stdout.is_empty(),
        "bench-suite keeps stdout machine-clean either way"
    );

    // Model content is identical; only wall-clock measurement differs
    // run to run, with or without the flag. The tolerance gate is the
    // arbiter: zero findings means no model drift at all.
    let report = fua_in(
        &tmp.0,
        &[
            "report",
            "--baseline",
            "BENCH_silent.json",
            "--current",
            "BENCH_chatty.json",
        ],
    );
    assert!(report.status.success());
    let verdict = String::from_utf8_lossy(&report.stdout);
    assert!(
        verdict.contains("PASS: 0 finding(s)"),
        "a --progress artifact must diff clean: {verdict}"
    );
}
