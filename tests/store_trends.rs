//! Integration: the longitudinal run store and `fua trends`.
//!
//! Exercised through the binary, the way CI drives them: artifacts
//! recorded with `bench-suite --store` must round-trip byte-identically
//! through `store show`, identical configurations must collapse to one
//! manifest key while any knob change splits it, `store gc` must never
//! touch an indexed artifact, and `trends` must pass on a clean history
//! and exit nonzero when the newest stored run regresses.

use std::path::Path;
use std::process::Command;

fn fua_in(dir: &Path, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_fua"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn fua binary")
}

fn stdout_of(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("fua-store-test-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Records one reduced-scale suite run into the store under `dir`.
fn record(dir: &Path, tag: &str, limit: &str) {
    let out = fua_in(
        dir,
        &["bench-suite", "--limit", limit, "--store", "--tag", tag],
    );
    assert!(
        out.status.success(),
        "bench-suite --store failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn stored_artifacts_round_trip_byte_identically() {
    let tmp = TempDir::new("roundtrip");
    record(&tmp.0, "a", "1500");
    record(&tmp.0, "b", "1500");

    // ls sees both runs under one configuration key.
    let ls = fua_in(&tmp.0, &["store", "ls"]);
    assert!(ls.status.success());
    let listing = stdout_of(&ls);
    assert!(
        listing.contains("2 run(s) over 1 configuration(s)"),
        "listing: {listing}"
    );

    // Each stored artifact parses and re-stores byte-identically:
    // putting a shown artifact back must dedup to the same object.
    let shown = stdout_of(&fua_in(&tmp.0, &["store", "show", "2"]));
    assert!(shown.contains("\"schema\": \"fua-bench/1.6\""));
    let copy = tmp.0.join("copy.json");
    std::fs::write(&copy, &shown).unwrap();
    let put = fua_in(&tmp.0, &["store", "put", "copy.json"]);
    assert!(put.status.success());
    assert!(
        stdout_of(&put).contains("deduplicated"),
        "re-putting identical bytes must dedup: {}",
        stdout_of(&put)
    );
    let reshown = stdout_of(&fua_in(&tmp.0, &["store", "show", "3"]));
    assert_eq!(shown, reshown, "put -> show must be byte-identical");
}

#[test]
fn a_config_change_splits_the_manifest_key() {
    let tmp = TempDir::new("keysplit");
    record(&tmp.0, "a", "1500");
    record(&tmp.0, "b", "1600");

    let listing = stdout_of(&fua_in(&tmp.0, &["store", "ls"]));
    assert!(
        listing.contains("2 run(s) over 2 configuration(s)"),
        "different --limit must yield distinct keys: {listing}"
    );

    // Only one run of the newest configuration exists, so trends has
    // no trajectory yet and must say so.
    let trends = fua_in(&tmp.0, &["trends"]);
    assert!(!trends.status.success());
    let stderr = String::from_utf8_lossy(&trends.stderr);
    assert!(
        stderr.contains("need at least 2 comparable runs"),
        "stderr: {stderr}"
    );
}

#[test]
fn gc_removes_orphans_but_never_indexed_artifacts() {
    let tmp = TempDir::new("gc");
    record(&tmp.0, "a", "1500");
    record(&tmp.0, "b", "1500");
    let before_1 = stdout_of(&fua_in(&tmp.0, &["store", "show", "1"]));
    let before_2 = stdout_of(&fua_in(&tmp.0, &["store", "show", "2"]));

    // Plant an orphan object and a stale staging file.
    let objects = tmp.0.join(".fua-store/objects");
    std::fs::write(objects.join("00000000000000000000000000000000.json"), "{}").unwrap();
    std::fs::write(tmp.0.join(".fua-store/tmp/stage-1-1"), "partial").unwrap();

    let gc = fua_in(&tmp.0, &["store", "gc"]);
    assert!(gc.status.success());
    let summary = stdout_of(&gc);
    assert!(
        summary.contains("removed 1 unreferenced object(s) and 1 staging file(s)"),
        "gc summary: {summary}"
    );

    // Indexed artifacts survive, byte for byte.
    assert_eq!(
        before_1,
        stdout_of(&fua_in(&tmp.0, &["store", "show", "1"]))
    );
    assert_eq!(
        before_2,
        stdout_of(&fua_in(&tmp.0, &["store", "show", "2"]))
    );
}

#[test]
fn trends_pass_on_a_clean_history_and_fail_on_a_seeded_regression() {
    let tmp = TempDir::new("trends");
    record(&tmp.0, "a", "1500");
    record(&tmp.0, "b", "1500");

    // Clean history: zero findings, sparkline series rendered.
    let clean = fua_in(&tmp.0, &["trends"]);
    assert!(
        clean.status.success(),
        "clean trends must pass: {}",
        stdout_of(&clean)
    );
    let rendered = stdout_of(&clean);
    assert!(rendered.contains("PASS: 0 finding(s)"), "{rendered}");
    assert!(rendered.contains("headline IALU %"), "{rendered}");
    assert!(
        rendered.contains("stall operand-wait share %"),
        "{rendered}"
    );

    // The JSON rendering agrees and is parseable.
    let json_out = fua_in(&tmp.0, &["trends", "--json"]);
    assert!(json_out.status.success());
    let json = fua::trace::Json::parse(&stdout_of(&json_out)).expect("trends --json parses");
    assert_eq!(
        json.get("schema").and_then(fua::trace::Json::as_str),
        Some("fua-trends/1")
    );
    assert_eq!(
        json.get("passed").and_then(fua::trace::Json::as_bool),
        Some(true)
    );

    // Seed a regressed third run by editing a shown artifact and
    // putting it back — exactly the CI negative test.
    let shown = stdout_of(&fua_in(&tmp.0, &["store", "show", "2"]));
    let needle = "\"ialu_pct\": ";
    let start = shown.find(needle).expect("headline field present") + needle.len();
    let end = start + shown[start..].find(',').expect("number terminated");
    let corrupted = format!("{}1.0{}", &shown[..start], &shown[end..]);
    let bad = tmp.0.join("bad.json");
    std::fs::write(&bad, corrupted).unwrap();
    assert!(fua_in(&tmp.0, &["store", "put", "bad.json"])
        .status
        .success());

    let failing = fua_in(&tmp.0, &["trends"]);
    assert!(
        !failing.status.success(),
        "a regressed newest run must fail trends"
    );
    let rendered = stdout_of(&failing);
    assert!(rendered.contains("trend-regression"), "{rendered}");
    assert!(rendered.contains("FAIL:"), "{rendered}");

    // report --store gates on the same pair (runs #2 and #3).
    let report = fua_in(&tmp.0, &["report", "--store"]);
    assert!(!report.status.success());
    assert!(stdout_of(&report).contains("REGRESSION"));
}
