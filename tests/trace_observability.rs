//! Integration: the observability layer must be deterministic, must not
//! perturb the simulation, and must agree with the architectural
//! counters the simulator already reports.

use fua::core::observed_scheme;
use fua::isa::FuClass;
use fua::sim::{MachineConfig, Simulator};
use fua::trace::{ChromeTraceSink, MetricsRecorder, RingBufferSink, ToJson, VecSink};
use fua::workloads::Workload;

const LIMIT: u64 = 10_000;

fn workload(name: &str) -> Workload {
    fua::workloads::by_name(name, 1).expect("bundled workload")
}

#[test]
fn identical_runs_trace_identically() {
    let w = workload("compress");
    let run = || {
        let mut sim = Simulator::with_sink(
            MachineConfig::paper_default(),
            observed_scheme(),
            (RingBufferSink::default(), MetricsRecorder::new()),
        );
        sim.run_program(&w.program, LIMIT).expect("runs");
        let (ring, recorder) = sim.into_sink();
        (ring, recorder.into_registry())
    };
    let (ring_a, registry_a) = run();
    let (ring_b, registry_b) = run();
    assert_eq!(ring_a.recorded(), ring_b.recorded());
    assert_eq!(
        ring_a.events(),
        ring_b.events(),
        "same seed must give byte-identical ring contents"
    );
    assert_eq!(
        registry_a.to_json().pretty(),
        registry_b.to_json().pretty(),
        "same seed must give identical metrics snapshots"
    );
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    for name in ["compress", "turb3d"] {
        let w = workload(name);
        let mut plain = Simulator::new(MachineConfig::paper_default(), observed_scheme());
        let a = plain.run_program(&w.program, LIMIT).expect("runs");
        let mut traced = Simulator::with_sink(
            MachineConfig::paper_default(),
            observed_scheme(),
            VecSink::new(),
        );
        let b = traced.run_program(&w.program, LIMIT).expect("runs");
        assert_eq!(a.cycles, b.cycles, "{name}: cycles");
        assert_eq!(a.retired, b.retired, "{name}: retired");
        assert_eq!(a.halted, b.halted, "{name}: halted");
        assert_eq!(a.ledger, b.ledger, "{name}: energy ledger");
        assert_eq!(a.swaps, b.swaps, "{name}: swap counters");
        assert_eq!(a.branches, b.branches, "{name}: branch stats");
        assert_eq!(a.cache, b.cache, "{name}: cache stats");
        assert!(!traced.sink().events.is_empty(), "{name}: events recorded");
    }
}

#[test]
fn metrics_agree_with_the_architectural_counters() {
    let w = workload("compress");
    let mut sim = Simulator::with_sink(
        MachineConfig::paper_default(),
        observed_scheme(),
        MetricsRecorder::new(),
    );
    let result = sim.run_program(&w.program, LIMIT).expect("runs");
    let registry = sim.into_sink().into_registry();

    // Per-module energy counters partition the ledger exactly.
    for class in FuClass::ALL {
        assert_eq!(
            registry.sum_counters(&format!("switched_bits.{class}.")),
            result.ledger.switched_bits(class),
            "{class}: switched bits"
        );
        assert_eq!(
            registry.sum_counters(&format!("ops.{class}.")),
            result.ledger.ops(class),
            "{class}: op counts"
        );
    }
    // Steering decisions cover every op issued to the duplicated IALU.
    assert_eq!(
        registry.sum_counters("steer.IALU.case"),
        result.ledger.ops(FuClass::IntAlu)
    );
    assert_eq!(registry.counter_value("stage.retire"), Some(result.retired));
    assert_eq!(
        registry.counter_value("cache.hits"),
        Some(result.cache.hits)
    );
    assert_eq!(
        registry.counter_value("cache.misses"),
        Some(result.cache.misses)
    );
    assert_eq!(
        registry.counter_value("branch.executed"),
        Some(result.branches.branches)
    );
    assert_eq!(
        registry.counter_value("branch.mispredicted"),
        Some(result.branches.mispredicts)
    );
    assert_eq!(
        registry.counter_value("swaps.rule"),
        Some(result.swaps.rule_swaps)
    );
    assert_eq!(
        registry.counter_value("swaps.policy"),
        Some(result.swaps.policy_swaps)
    );
    assert_eq!(
        registry.counter_value("swaps.multiplier"),
        Some(result.swaps.multiplier_swaps)
    );
}

#[test]
fn chrome_export_of_a_real_run_has_the_trace_event_shape() {
    let w = workload("compress");
    let mut sim = Simulator::with_sink(
        MachineConfig::paper_default(),
        observed_scheme(),
        ChromeTraceSink::new(),
    );
    sim.run_program(&w.program, 2_000).expect("runs");
    let json = sim.into_sink().into_json().compact();
    assert!(json.starts_with("{\"traceEvents\":["));
    for needle in [
        "\"ph\":\"X\"",
        "\"ph\":\"M\"",
        "\"ph\":\"C\"",
        "\"ts\":",
        "\"pid\":1",
        "\"pid\":2",
        "\"tid\":",
        "IALU.m0",
        "switched_bits.IALU",
    ] {
        assert!(json.contains(needle), "export must contain {needle}");
    }
}
