//! Integration: interval telemetry must be *exact* — the windowed
//! time-series is a partition of the run, so its column sums must
//! reproduce the final `EnergyLedger` and the metrics-registry totals
//! bit-for-bit, for every steering scheme × swap variant. And like every
//! other sink, windowing must not perturb the simulation.

use fua::core::{observed_scheme, ExperimentConfig};
use fua::isa::FuClass;
use fua::power::EnergyLedger;
use fua::sim::{Simulator, SteeringConfig};
use fua::steer::SteeringKind;
use fua::trace::{MetricsRecorder, WindowedSink};
use fua::workloads::Workload;

fn workload(name: &str) -> Workload {
    fua::workloads::by_name(name, 1).expect("bundled workload")
}

/// One integer and one floating-point workload exercise all four FU
/// classes (the FP programs still run integer address arithmetic).
fn sample_pair() -> [Workload; 2] {
    [workload("compress"), workload("turb3d")]
}

#[test]
fn windowed_sums_equal_ledger_and_metrics_for_every_scheme_and_swap() {
    let config = ExperimentConfig::quick();
    for kind in SteeringKind::FIGURE4 {
        for hw_swap in [false, true] {
            let mut sink = WindowedSink::new(512);
            let mut recorder = MetricsRecorder::new();
            let mut ledger = EnergyLedger::new();
            for w in sample_pair() {
                let mut sim = Simulator::with_sink(
                    config.machine.clone(),
                    SteeringConfig::paper_scheme(kind, hw_swap),
                    (sink, recorder),
                );
                let result = sim
                    .run_program(&w.program, config.inst_limit)
                    .expect("runs");
                ledger.merge(&result.ledger);
                (sink, recorder) = sim.into_sink();
            }
            let registry = recorder.into_registry();
            let series = sink.into_series();

            // Exactness against the simulator's own energy ledger.
            let mut reassembled = EnergyLedger::new();
            reassembled.accumulate(series.total_switched_bits(), series.total_ops());
            assert_eq!(
                reassembled, ledger,
                "{kind:?} hw_swap={hw_swap}: windowed sums must reproduce the ledger"
            );

            // Exactness against the metrics-registry totals.
            for class in FuClass::ALL {
                assert_eq!(
                    registry.sum_counters(&format!("switched_bits.{class}.")),
                    series.total_switched_bits()[class.index()],
                    "{kind:?} hw_swap={hw_swap} {class}: switched bits vs metrics"
                );
                assert_eq!(
                    registry.sum_counters(&format!("ops.{class}.")),
                    series.total_ops()[class.index()],
                    "{kind:?} hw_swap={hw_swap} {class}: op counts vs metrics"
                );
            }

            // The per-module split must itself re-sum to the per-class
            // totals (the windows partition by module and by window).
            for class in FuClass::ALL {
                let module_sum: u64 = series.total_module_bits()[class.index()].iter().sum();
                assert_eq!(
                    module_sum,
                    series.total_switched_bits()[class.index()],
                    "{kind:?} hw_swap={hw_swap} {class}: module split"
                );
            }
        }
    }
}

#[test]
fn windowing_does_not_perturb_the_simulation() {
    for name in ["compress", "turb3d"] {
        let w = workload(name);
        let limit = ExperimentConfig::quick().inst_limit;
        let mut plain = Simulator::new(fua::sim::MachineConfig::paper_default(), observed_scheme());
        let a = plain.run_program(&w.program, limit).expect("runs");
        let mut windowed = Simulator::with_sink(
            fua::sim::MachineConfig::paper_default(),
            observed_scheme(),
            WindowedSink::new(1024),
        );
        let b = windowed.run_program(&w.program, limit).expect("runs");
        assert_eq!(a.cycles, b.cycles, "{name}: cycles");
        assert_eq!(a.retired, b.retired, "{name}: retired");
        assert_eq!(a.halted, b.halted, "{name}: halted");
        assert_eq!(a.ledger, b.ledger, "{name}: energy ledger");
        assert_eq!(a.swaps, b.swaps, "{name}: swap counters");
        assert_eq!(a.branches, b.branches, "{name}: branch stats");
        assert_eq!(a.cache, b.cache, "{name}: cache stats");

        let series = windowed.into_sink().into_series();
        assert!(!series.is_empty(), "{name}: windows recorded");
        assert_eq!(series.total_retired(), b.retired, "{name}: retired sum");
        let mut reassembled = EnergyLedger::new();
        reassembled.accumulate(series.total_switched_bits(), series.total_ops());
        assert_eq!(reassembled, b.ledger, "{name}: ledger reassembly");
    }
}

#[test]
fn csv_and_counter_exports_cover_every_window() {
    let w = workload("compress");
    let mut sim = Simulator::with_sink(
        fua::sim::MachineConfig::paper_default(),
        observed_scheme(),
        WindowedSink::new(256),
    );
    sim.run_program(&w.program, 10_000).expect("runs");
    let series = sim.into_sink().into_series();
    let csv = series.to_csv();
    // Header + one line per window.
    assert_eq!(csv.lines().count(), 1 + series.len());
    assert!(csv.starts_with("window,start_cycle,cycles,retired"));
    let chrome = series.into_chrome_json().compact();
    assert!(chrome.contains("\"ph\":\"C\""), "counter events present");
    assert!(chrome.contains("window.ipc"));
}
