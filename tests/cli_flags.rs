//! Integration: CLI flag validation. Every positive-integer flag must
//! reject `0` and non-numeric input the same way — a clear message on
//! stderr that names the flag, a nonzero exit code, and nothing on
//! stdout (so a broken invocation can never be mistaken for data by a
//! downstream pipeline).

use std::process::Command;

fn fua(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_fua"))
        .args(args)
        .output()
        .expect("spawn fua binary")
}

/// Runs a known-bad invocation and returns its stderr after checking
/// the exit code and that stdout stayed machine-clean.
fn expect_rejection(args: &[&str]) -> String {
    let out = fua(args);
    assert!(
        !out.status.success(),
        "`fua {}` must exit nonzero",
        args.join(" ")
    );
    assert!(
        out.stdout.is_empty(),
        "`fua {}` must not write data to stdout; got: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn zero_is_rejected_by_every_positive_integer_flag() {
    let cases: [(&[&str], &str); 9] = [
        (&["tables", "--jobs", "0"], "--jobs"),
        (&["tables", "--limit", "0"], "--limit"),
        (&["tables", "--scale", "0"], "--scale"),
        (&["trace", "compress", "--last", "0"], "--last"),
        (&["trace", "compress", "--window", "0"], "--window"),
        (&["profile-energy", "compress", "--top", "0"], "--top"),
        (&["bench-suite", "--jobs", "0"], "--jobs"),
        (&["estimate", "all", "--jobs", "0"], "--jobs"),
        (&["estimate", "compress", "--limit", "0"], "--limit"),
    ];
    for (args, flag) in cases {
        let stderr = expect_rejection(args);
        assert!(
            stderr.contains(flag),
            "`fua {}`: stderr must name {flag}; got: {stderr}",
            args.join(" ")
        );
        assert!(
            stderr.contains("error:"),
            "`fua {}`: stderr must carry an error line; got: {stderr}",
            args.join(" ")
        );
    }
}

#[test]
fn non_numeric_values_are_rejected_with_the_offending_input() {
    let cases: [(&[&str], &str); 5] = [
        (&["tables", "--jobs", "many"], "--jobs"),
        (&["tables", "--limit", "1e6"], "--limit"),
        (&["trace", "compress", "--window", "wide"], "--window"),
        (&["profile-energy", "compress", "--top", "-3"], "--top"),
        (&["estimate", "all", "--jobs", "some"], "--jobs"),
    ];
    for (args, flag) in cases {
        let stderr = expect_rejection(args);
        assert!(
            stderr.contains(flag),
            "`fua {}`: stderr must name {flag}; got: {stderr}",
            args.join(" ")
        );
        // The offending value is echoed back so the user can see what
        // was actually parsed.
        let value = args.last().unwrap();
        assert!(
            stderr.contains(value),
            "`fua {}`: stderr must echo `{value}`; got: {stderr}",
            args.join(" ")
        );
    }
}

#[test]
fn a_flag_missing_its_value_is_rejected() {
    for args in [&["tables", "--jobs"][..], &["tables", "--limit"][..]] {
        let stderr = expect_rejection(args);
        assert!(
            stderr.contains("needs a value"),
            "`fua {}`: got: {stderr}",
            args.join(" ")
        );
    }
}

#[test]
fn an_unknown_scheme_lists_the_valid_names_on_every_subcommand() {
    let cases: [&[&str]; 4] = [
        &["estimate", "compress", "--scheme", "lut16"],
        &["estimate", "compress", "--compare", "lut16", "lut4"],
        &["profile-energy", "compress", "--scheme", "lut16"],
        &["profile-energy", "compress", "--compare", "lut4", "lut16"],
    ];
    for args in cases {
        let stderr = expect_rejection(args);
        assert!(
            stderr.contains("unknown scheme: lut16"),
            "`fua {}`: got: {stderr}",
            args.join(" ")
        );
        // The same uniform list everywhere, in Figure-4 order.
        assert!(
            stderr.contains("available schemes: fullham, 1bitham, lut4, lut2, lut8, naive"),
            "`fua {}`: got: {stderr}",
            args.join(" ")
        );
    }
}

#[test]
fn estimate_rejects_mutually_exclusive_flags() {
    let stderr = expect_rejection(&[
        "estimate",
        "compress",
        "--scheme",
        "lut4",
        "--compare",
        "lut4",
        "naive",
    ]);
    assert!(
        stderr.contains("--scheme and --compare are mutually exclusive"),
        "got: {stderr}"
    );
    let stderr = expect_rejection(&[
        "estimate",
        "compress",
        "--verify",
        "--compare",
        "lut4",
        "naive",
    ]);
    assert!(
        stderr.contains("--verify and --compare are mutually exclusive"),
        "got: {stderr}"
    );
}

#[test]
fn valid_flag_values_still_pass() {
    let out = fua(&["workloads", "--jobs", "2"]);
    assert!(out.status.success(), "control case must succeed");
    assert!(!out.stdout.is_empty());

    let out = fua(&["estimate", "compress", "--scheme", "naive", "--jobs", "2"]);
    assert!(out.status.success(), "estimate control case must succeed");
    assert!(!out.stdout.is_empty());
}

#[test]
fn report_names_the_missing_artifact_path() {
    let stderr = expect_rejection(&["report", "--baseline", "/no/such/BENCH_x.json"]);
    assert!(
        stderr.contains("/no/such/BENCH_x.json"),
        "the offending path must be named: {stderr}"
    );
    assert!(stderr.contains("error:"), "got: {stderr}");
}

#[test]
fn report_schema_mismatch_lists_the_accepted_range() {
    let dir = std::env::temp_dir().join(format!("fua-schema-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_future.json");
    std::fs::write(&path, "{\"schema\": \"fua-bench/99\"}\n").unwrap();
    let path_str = path.to_str().unwrap();

    let stderr = expect_rejection(&["report", "--baseline", path_str]);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        stderr.contains(path_str),
        "the offending path must be named: {stderr}"
    );
    assert!(
        stderr.contains("unknown schema: fua-bench/99"),
        "got: {stderr}"
    );
    // The full accepted range, oldest to newest, like the workload and
    // scheme errors list their valid names.
    assert!(
        stderr.contains(
            "accepted schemas: fua-bench/1, fua-bench/1.1, fua-bench/1.2, \
             fua-bench/1.3, fua-bench/1.4, fua-bench/1.5, fua-bench/1.6"
        ),
        "got: {stderr}"
    );
}

#[test]
fn report_store_is_mutually_exclusive_with_explicit_artifacts() {
    let stderr = expect_rejection(&["report", "--store", "--baseline", "BENCH_x.json"]);
    assert!(
        stderr.contains("cannot be combined with --baseline/--current"),
        "got: {stderr}"
    );
}

#[test]
fn store_subcommands_validate_their_arguments() {
    // An unknown store action is a usage error.
    let out = fua(&["store", "frobnicate"]);
    assert!(!out.status.success());

    // A reference into an empty store names the store and what it holds.
    let dir = std::env::temp_dir().join(format!("fua-storeref-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_fua"))
        .current_dir(&dir)
        .args(["store", "show", "7"])
        .output()
        .expect("spawn fua binary");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no stored artifact matches `7`"),
        "got: {stderr}"
    );
}
