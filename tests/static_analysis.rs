//! Integration tests for the `fua-analysis` stack over the bundled
//! workload kernels: the linter accepts every shipped kernel, rejects
//! seeded corruptions of simple programs, and the profile-free static
//! swap pass never changes architectural semantics.

use fua::analysis::{lint_program, LintKind};
use fua::isa::{IntReg, ProgramBuilder};
use fua::swap::StaticSwapPass;
use fua::vm::Vm;
use fua::workloads::SplitMix64;

fn r(i: u8) -> IntReg {
    IntReg::new(i)
}

#[test]
fn every_bundled_kernel_lints_clean() {
    let workloads = fua::workloads::all(1);
    assert_eq!(workloads.len(), 15);
    for w in workloads {
        let lints = lint_program(&w.program);
        assert!(lints.is_empty(), "{}: {:?}", w.name, lints);
    }
}

/// Builds a random clean straight-line body, then injects one seeded
/// defect of the requested kind; the linter must flag that kind.
fn seeded_bad_kernel(rng: &mut SplitMix64, kind: LintKind) -> fua::isa::Program {
    let mut b = ProgramBuilder::new();
    match kind {
        LintKind::UninitRead => {
            // A read of a register no path has written.
            let cold = r(rng.range_usize(20, 30) as u8);
            b.li(r(1), rng.next_u64() as i32);
            b.add(r(2), r(1), cold);
            b.halt();
        }
        LintKind::DeadWrite => {
            // Two writes to the same register with no intervening read.
            let victim = r(rng.range_usize(1, 8) as u8);
            b.li(victim, rng.next_u64() as i32);
            b.li(victim, rng.next_u64() as i32);
            b.add(r(9), victim, victim);
            b.halt();
        }
        LintKind::UnreachableBlock => {
            // A jump over a block nothing targets.
            let end = b.new_label();
            b.li(r(1), 1);
            b.j(end);
            for _ in 0..rng.range_usize(1, 5) {
                b.addi(r(1), r(1), 1);
            }
            b.bind(end);
            b.halt();
        }
        LintKind::NoHaltReachable => {
            // A loop with no exit; the halt after it is unreachable.
            let top = b.new_label();
            b.li(r(1), 0);
            b.bind(top);
            b.addi(r(1), r(1), rng.range_usize(1, 9) as i32);
            b.j(top);
            b.halt();
        }
        other => panic!("no generator for {other:?}"),
    }
    b.build().expect("structurally valid")
}

#[test]
fn seeded_bad_kernels_are_flagged() {
    let mut rng = SplitMix64::new(0xA00A);
    let kinds = [
        LintKind::UninitRead,
        LintKind::DeadWrite,
        LintKind::UnreachableBlock,
        LintKind::NoHaltReachable,
    ];
    for round in 0..12 {
        for kind in kinds {
            let p = seeded_bad_kernel(&mut rng, kind);
            let found = lint_program(&p);
            assert!(
                found.iter().any(|l| l.kind == kind),
                "round {round}: seeded {kind:?} not flagged; got {found:?}"
            );
        }
    }
}

#[test]
fn uninit_reads_distinguish_every_path_from_some_path() {
    // Written on no path: a definite finding ("is read").
    let mut b = ProgramBuilder::new();
    b.add(r(2), r(1), r(1));
    b.halt();
    let definite = lint_program(&b.build().unwrap());
    assert_eq!(
        definite
            .iter()
            .filter(|l| l.kind == LintKind::UninitRead)
            .count(),
        1,
        "one finding per register, not per source slot: {definite:?}"
    );
    assert!(definite
        .iter()
        .any(|l| l.message.contains("is read before")));

    // Written on one of two paths: a may-finding.
    let mut b = ProgramBuilder::new();
    let join = b.new_label();
    b.li(r(2), 1);
    b.bgtz(r(2), join);
    b.li(r(1), 7);
    b.bind(join);
    b.add(r(3), r(1), r(1));
    b.halt();
    let partial = lint_program(&b.build().unwrap());
    assert!(
        partial
            .iter()
            .any(|l| l.kind == LintKind::UninitRead && l.message.contains("may be read before")),
        "{partial:?}"
    );
}

#[test]
fn a_write_only_observed_through_a_later_overwrite_is_dead() {
    // The first li's value is overwritten on every path before any
    // read, so only the first write is dead.
    let mut b = ProgramBuilder::new();
    b.li(r(1), 3);
    b.li(r(1), 4);
    b.add(r(2), r(1), r(1));
    b.halt();
    let lints = lint_program(&b.build().unwrap());
    let dead: Vec<_> = lints
        .iter()
        .filter(|l| l.kind == LintKind::DeadWrite)
        .collect();
    assert_eq!(dead.len(), 1, "{lints:?}");
    assert_eq!(dead[0].inst, Some(0));
}

#[test]
fn static_swap_preserves_architectural_semantics_on_every_kernel() {
    for w in fua::workloads::all(1) {
        let out = StaticSwapPass::new().run(&w.program);

        let mut reference = Vm::new(&w.program);
        reference
            .run(50_000)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let mut rewritten = Vm::new(&out.program);
        rewritten
            .run(50_000)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));

        assert_eq!(reference.retired(), rewritten.retired(), "{}", w.name);
        assert_eq!(reference.halted(), rewritten.halted(), "{}", w.name);
        assert_eq!(reference.int_regs(), rewritten.int_regs(), "{}", w.name);
        assert_eq!(reference.fp_regs(), rewritten.fp_regs(), "{}", w.name);
    }
}
