//! Integration: `fua harness-report` — the harness observing itself.
//!
//! The report's stdout is derived only from deterministic model state,
//! so it must be byte-identical across worker counts; the measured
//! timing lives on stderr and in side files. The side files must be
//! well-formed: the OpenMetrics exposition ends with `# EOF` and the
//! Perfetto timeline parses as JSON with worker thread tracks.

use std::path::Path;
use std::process::Command;

fn fua_in(dir: &Path, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_fua"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn fua binary")
}

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("fua-harness-test-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn stdout_is_byte_identical_across_worker_counts() {
    let tmp = TempDir::new("jobs");
    let one = fua_in(
        &tmp.0,
        &["harness-report", "--limit", "2000", "--jobs", "1"],
    );
    let four = fua_in(
        &tmp.0,
        &["harness-report", "--limit", "2000", "--jobs", "4"],
    );
    assert!(
        one.status.success() && four.status.success(),
        "harness-report failed: {}",
        String::from_utf8_lossy(&four.stderr)
    );
    assert_eq!(
        one.stdout, four.stdout,
        "worker count must never leak into the deterministic report"
    );
    let text = String::from_utf8_lossy(&one.stdout);
    assert!(text.contains("simulated cycles"), "report: {text}");
}

#[test]
fn json_report_carries_the_schema_and_only_deterministic_fields() {
    let tmp = TempDir::new("json");
    let out = fua_in(
        &tmp.0,
        &["harness-report", "--limit", "2000", "--jobs", "2", "--json"],
    );
    assert!(out.status.success());
    let json = fua::trace::Json::parse(&String::from_utf8_lossy(&out.stdout))
        .expect("harness-report --json parses");
    assert_eq!(
        json.get("schema").and_then(fua::trace::Json::as_str),
        Some("fua-harness-report/1")
    );
    // The worker count is measurement context, not model output: it must
    // stay off stdout so the report diffs clean across --jobs values.
    assert!(json.get("jobs").is_none());
    let serial = json.get("serial_pass").expect("serial_pass section");
    let parallel = json.get("parallel_sweep").expect("parallel_sweep section");
    for section in [serial, parallel] {
        assert!(
            section.get("cycles").and_then(fua::trace::Json::as_u64) > Some(0),
            "simulated cycles recorded"
        );
    }
    assert_eq!(
        serial.get("cycles").and_then(fua::trace::Json::as_u64),
        parallel.get("cycles").and_then(fua::trace::Json::as_u64),
        "both passes run the same deterministic engine"
    );
}

#[test]
fn side_files_are_well_formed() {
    let tmp = TempDir::new("sidecar");
    let out = fua_in(
        &tmp.0,
        &[
            "harness-report",
            "--limit",
            "2000",
            "--jobs",
            "2",
            "--out",
            "timeline.json",
            "--openmetrics",
            "harness.om",
            "--flame",
            "harness.folded",
        ],
    );
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // OpenMetrics text exposition: ends with the mandated EOF marker and
    // declares the queue-depth histogram.
    let om = std::fs::read_to_string(tmp.0.join("harness.om")).expect("openmetrics written");
    assert!(om.ends_with("# EOF\n"), "exposition must end with # EOF");
    assert!(
        om.contains("# TYPE fua_harness_queue_depth histogram"),
        "{om}"
    );
    assert!(om.contains("fua_harness_busy_nanos"), "{om}");

    // Perfetto timeline: parses as JSON, and every worker span rides a
    // named thread track.
    let timeline = std::fs::read_to_string(tmp.0.join("timeline.json")).expect("timeline written");
    let json = fua::trace::Json::parse(&timeline).expect("timeline parses");
    let events = json
        .get("traceEvents")
        .and_then(fua::trace::Json::as_arr)
        .expect("traceEvents array");
    assert!(
        events
            .iter()
            .any(|e| { e.get("name").and_then(fua::trace::Json::as_str) == Some("thread_name") }),
        "worker tracks must be named"
    );

    // Folded stacks: every line is `frames... count` with harness root.
    let folded = std::fs::read_to_string(tmp.0.join("harness.folded")).expect("flame written");
    for line in folded.lines() {
        assert!(line.starts_with("harness;"), "stack root: {line}");
        let count = line.rsplit(' ').next().expect("count column");
        count.parse::<u64>().expect("counts are integers");
    }
}
