//! Integration: the timing model and the architectural interpreter must
//! agree about *what* executed, for every bundled workload.

use fua::isa::FuClass;
use fua::sim::{MachineConfig, Simulator, SteeringConfig};
use fua::vm::Vm;
use fua::workloads::all;

const LIMIT: u64 = 60_000;

#[test]
fn simulator_retires_exactly_the_interpreted_stream() {
    for w in all(1) {
        let mut vm = Vm::new(&w.program);
        let trace = vm
            .run(LIMIT)
            .unwrap_or_else(|e| panic!("{}: vm faulted: {e}", w.name));

        let mut sim = Simulator::new(MachineConfig::paper_default(), SteeringConfig::original());
        let result = sim
            .run_program(&w.program, LIMIT)
            .unwrap_or_else(|e| panic!("{}: sim faulted: {e}", w.name));

        assert_eq!(
            result.retired,
            trace.ops.len() as u64,
            "{}: sim and vm disagree on the instruction count",
            w.name
        );
        // FU operation counts must match the trace exactly.
        for class in FuClass::ALL {
            let expected = trace
                .ops
                .iter()
                .filter(|o| o.fu_class() == Some(class))
                .count() as u64;
            assert_eq!(
                result.ledger.ops(class),
                expected,
                "{}: {class} op count",
                w.name
            );
        }
        // Sanity: a 4-wide machine keeps IPC in (0, 4].
        let ipc = result.ipc();
        assert!(ipc > 0.0 && ipc <= 4.0, "{}: IPC {ipc:.2}", w.name);
    }
}

#[test]
fn run_trace_equals_run_program() {
    let w = fua::workloads::by_name("perl", 1).expect("bundled");
    let mut vm = Vm::new(&w.program);
    let trace = vm.run(LIMIT).expect("runs");

    let mut sim_a = Simulator::new(MachineConfig::paper_default(), SteeringConfig::original());
    let from_program = sim_a.run_program(&w.program, LIMIT).expect("runs");
    let mut sim_b = Simulator::new(MachineConfig::paper_default(), SteeringConfig::original());
    let from_trace = sim_b.run_trace(&trace.ops);

    assert_eq!(from_program.cycles, from_trace.cycles);
    assert_eq!(from_program.retired, from_trace.retired);
    assert_eq!(
        from_program.ledger.total_switched_bits(),
        from_trace.ledger.total_switched_bits()
    );
}
