//! Integration: the compiler swap pass must be a pure performance
//! transformation — every workload must compute bit-identical results
//! after rewriting.

use fua::swap::CompilerSwapPass;
use fua::vm::Vm;
use fua::workloads::all;

const LIMIT: u64 = 400_000;

#[test]
fn compiler_swapped_programs_are_bit_identical() {
    for w in all(1) {
        let outcome = CompilerSwapPass::with_limit(LIMIT)
            .run(&w.program)
            .unwrap_or_else(|e| panic!("{}: swap pass faulted: {e}", w.name));

        let mut vm_a = Vm::new(&w.program);
        vm_a.run_with(LIMIT, |_| ())
            .unwrap_or_else(|e| panic!("{}: original faulted: {e}", w.name));
        let mut vm_b = Vm::new(&outcome.program);
        vm_b.run_with(LIMIT, |_| ())
            .unwrap_or_else(|e| panic!("{}: rewritten faulted: {e}", w.name));

        assert_eq!(
            vm_a.retired(),
            vm_b.retired(),
            "{}: instruction counts diverged",
            w.name
        );
        assert_eq!(
            vm_a.int_regs(),
            vm_b.int_regs(),
            "{}: integer registers diverged",
            w.name
        );
        let fa = vm_a.fp_regs();
        let fb = vm_b.fp_regs();
        for (i, (a, b)) in fa.iter().zip(&fb).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: fp register f{i} diverged",
                w.name
            );
        }
        assert_eq!(
            vm_a.memory(),
            vm_b.memory(),
            "{}: memory images diverged",
            w.name
        );
    }
}

#[test]
fn swap_pass_is_idempotent() {
    // Rewriting an already-rewritten program must change nothing: the
    // canonical order is a fixed point.
    let w = fua::workloads::by_name("mgrid", 1).expect("bundled");
    let once = CompilerSwapPass::with_limit(LIMIT)
        .run(&w.program)
        .expect("first pass");
    let twice = CompilerSwapPass::with_limit(LIMIT)
        .run(&once.program)
        .expect("second pass");
    assert!(
        twice.swapped.is_empty(),
        "second pass still swapped {:?}",
        twice.swapped
    );
}
