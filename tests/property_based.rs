//! Property-based integration tests over the core data structures and
//! the whole VM → pipeline stack.

use fua::isa::{hamming_u32, Case, FuClass, IntReg, ProgramBuilder, Word};
use fua::power::{pair_cost, steering_cost, ModulePorts};
use fua::sim::{MachineConfig, Simulator, SteeringConfig};
use fua::steer::min_cost_assignment;
use fua::vm::{FuOp, Vm};
use proptest::prelude::*;

proptest! {
    // --- Word / Hamming properties -----------------------------------

    #[test]
    fn hamming_is_a_metric(a: u32, b: u32, c: u32) {
        prop_assert_eq!(hamming_u32(a, a), 0);
        prop_assert_eq!(hamming_u32(a, b), hamming_u32(b, a));
        prop_assert!(hamming_u32(a, c) <= hamming_u32(a, b) + hamming_u32(b, c));
    }

    #[test]
    fn int_info_bit_is_the_sign(v: i32) {
        prop_assert_eq!(Word::int(v).info_bit(), v < 0);
    }

    #[test]
    fn fp_info_bit_matches_low_mantissa_bits(bits: u64) {
        let w = Word::Fp(bits);
        prop_assert_eq!(w.info_bit(), bits & 0xF != 0);
        // Monotone in k: widening the window can only set the bit.
        for k in 1..12u32 {
            prop_assert!(w.info_bit_k(k) <= w.info_bit_k(k + 1));
        }
    }

    #[test]
    fn case_swap_swaps_bits(a: bool, b: bool) {
        let case = Case::from_info_bits(a, b);
        prop_assert_eq!(case.swapped(), Case::from_info_bits(b, a));
        prop_assert_eq!(case.swapped().swapped(), case);
    }

    // --- power-model properties ---------------------------------------

    #[test]
    fn pair_cost_is_bounded_by_width(a: i32, b: i32, c: i32, d: i32) {
        let prev = Some((Word::int(a), Word::int(b)));
        let cost = pair_cost(prev, Word::int(c), Word::int(d));
        prop_assert!(cost <= 64);
    }

    #[test]
    fn steering_cost_swap_never_hurts(a: i32, b: i32, c: i32, d: i32) {
        let prev = Some((Word::int(a), Word::int(b)));
        let op = FuOp {
            class: FuClass::IntAlu,
            op1: Word::int(c),
            op2: Word::int(d),
            commutative: true,
        };
        let (with_swap, _) = steering_cost(prev, &op, true);
        let (without, _) = steering_cost(prev, &op, false);
        prop_assert!(with_swap <= without);
    }

    #[test]
    fn module_ports_charge_what_they_peek(values in prop::collection::vec((any::<i32>(), any::<i32>()), 1..20)) {
        let mut ports = ModulePorts::new();
        for (a, b) in values {
            let (a, b) = (Word::int(a), Word::int(b));
            let peeked = ports.peek_cost(a, b);
            prop_assert_eq!(ports.latch(a, b), peeked);
            prop_assert_eq!(ports.prev(), Some((a, b)));
        }
    }

    // --- assignment-solver properties ----------------------------------

    #[test]
    fn assignment_is_injective_and_optimal(
        rows in 1usize..4,
        extra_cols in 0usize..3,
        seed: u64,
    ) {
        let cols = rows + extra_cols;
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 1000) as u32
        };
        let cost: Vec<Vec<u32>> = (0..rows).map(|_| (0..cols).map(|_| next()).collect()).collect();
        let assign = min_cost_assignment(&cost);

        // Injective.
        let mut seen = assign.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), rows);

        // Optimal: compare against brute force over permutations.
        fn brute(cost: &[Vec<u32>], row: usize, used: &mut Vec<bool>) -> u64 {
            if row == cost.len() {
                return 0;
            }
            let mut best = u64::MAX;
            for c in 0..cost[0].len() {
                if !used[c] {
                    used[c] = true;
                    let sub = brute(cost, row + 1, used);
                    if sub != u64::MAX {
                        best = best.min(cost[row][c] as u64 + sub);
                    }
                    used[c] = false;
                }
            }
            best
        }
        let got: u64 = assign.iter().enumerate().map(|(r, &c)| cost[r][c] as u64).sum();
        prop_assert_eq!(got, brute(&cost, 0, &mut vec![false; cols]));
    }

    // --- whole-stack properties -----------------------------------------

    #[test]
    fn random_straightline_programs_run_identically_under_every_policy(
        ops in prop::collection::vec((0u8..6, 1u8..8, 1u8..8, 1u8..8), 1..40),
    ) {
        // Build a random straight-line ALU program over registers r1..r7.
        let mut b = ProgramBuilder::new();
        for i in 1..8 {
            b.li(IntReg::new(i), (i as i32 - 4) * 1234567);
        }
        for (op, rd, rs, rt) in ops {
            let (rd, rs, rt) = (IntReg::new(rd), IntReg::new(rs), IntReg::new(rt));
            match op {
                0 => b.add(rd, rs, rt),
                1 => b.sub(rd, rs, rt),
                2 => b.and(rd, rs, rt),
                3 => b.or(rd, rs, rt),
                4 => b.xor(rd, rs, rt),
                _ => b.slt(rd, rs, rt),
            }
        }
        b.halt();
        let program = b.build().expect("valid by construction");

        // The architectural result is policy-independent.
        let mut reference = Vm::new(&program);
        reference.run(10_000).expect("runs");

        for kind in fua::steer::SteeringKind::FIGURE4 {
            let mut sim = Simulator::new(
                MachineConfig::paper_default(),
                SteeringConfig::paper_scheme(kind, true),
            );
            let result = sim.run_program(&program, 10_000).expect("runs");
            prop_assert_eq!(result.retired, reference.retired());
            prop_assert!(result.halted);
        }
    }
}
