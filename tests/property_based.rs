//! Randomized integration tests over the core data structures and the
//! whole VM → pipeline stack. Each test sweeps a deterministic family
//! of seeded random inputs (SplitMix64), so the checks behave like the
//! property tests they replace but need no external test-case library.

use fua::isa::{hamming_u32, Case, FuClass, IntReg, ProgramBuilder, Word};
use fua::power::{pair_cost, steering_cost, ModulePorts};
use fua::sim::{MachineConfig, Simulator, SteeringConfig};
use fua::steer::min_cost_assignment;
use fua::vm::{FuOp, Vm};
use fua::workloads::SplitMix64;

// --- Word / Hamming properties ---------------------------------------

#[test]
fn hamming_is_a_metric() {
    let mut rng = SplitMix64::new(0xA001);
    for _ in 0..256 {
        let (a, b, c) = (
            rng.next_u64() as u32,
            rng.next_u64() as u32,
            rng.next_u64() as u32,
        );
        assert_eq!(hamming_u32(a, a), 0);
        assert_eq!(hamming_u32(a, b), hamming_u32(b, a));
        assert!(hamming_u32(a, c) <= hamming_u32(a, b) + hamming_u32(b, c));
    }
}

#[test]
fn int_info_bit_is_the_sign() {
    let mut rng = SplitMix64::new(0xA002);
    for _ in 0..256 {
        let v = rng.next_u64() as i32;
        assert_eq!(Word::int(v).info_bit(), v < 0);
    }
    assert!(!Word::int(0).info_bit());
    assert!(Word::int(i32::MIN).info_bit());
}

#[test]
fn fp_info_bit_matches_low_mantissa_bits() {
    let mut rng = SplitMix64::new(0xA003);
    for _ in 0..256 {
        let bits = rng.next_u64();
        let w = Word::Fp(bits);
        assert_eq!(w.info_bit(), bits & 0xF != 0);
        // Monotone in k: widening the window can only set the bit.
        for k in 1..12u32 {
            assert!(w.info_bit_k(k) <= w.info_bit_k(k + 1));
        }
    }
}

#[test]
fn case_swap_swaps_bits() {
    for a in [false, true] {
        for b in [false, true] {
            let case = Case::from_info_bits(a, b);
            assert_eq!(case.swapped(), Case::from_info_bits(b, a));
            assert_eq!(case.swapped().swapped(), case);
        }
    }
}

// --- power-model properties ------------------------------------------

#[test]
fn pair_cost_is_bounded_by_width() {
    let mut rng = SplitMix64::new(0xA004);
    for _ in 0..256 {
        let prev = Some((
            Word::int(rng.next_u64() as i32),
            Word::int(rng.next_u64() as i32),
        ));
        let cost = pair_cost(
            prev,
            Word::int(rng.next_u64() as i32),
            Word::int(rng.next_u64() as i32),
        );
        assert!(cost <= 64);
    }
}

#[test]
fn steering_cost_swap_never_hurts() {
    let mut rng = SplitMix64::new(0xA005);
    for _ in 0..256 {
        let prev = Some((
            Word::int(rng.next_u64() as i32),
            Word::int(rng.next_u64() as i32),
        ));
        let op = FuOp {
            class: FuClass::IntAlu,
            op1: Word::int(rng.next_u64() as i32),
            op2: Word::int(rng.next_u64() as i32),
            commutative: true,
        };
        let (with_swap, _) = steering_cost(prev, &op, true);
        let (without, _) = steering_cost(prev, &op, false);
        assert!(with_swap <= without);
    }
}

#[test]
fn module_ports_charge_what_they_peek() {
    let mut rng = SplitMix64::new(0xA006);
    for _ in 0..32 {
        let mut ports = ModulePorts::new();
        for _ in 0..rng.range_usize(1, 20) {
            let a = Word::int(rng.next_u64() as i32);
            let b = Word::int(rng.next_u64() as i32);
            let peeked = ports.peek_cost(a, b);
            assert_eq!(ports.latch(a, b), peeked);
            assert_eq!(ports.prev(), Some((a, b)));
        }
    }
}

// --- assignment-solver properties ------------------------------------

#[test]
fn assignment_is_injective_and_optimal() {
    // Optimal: compare against brute force over permutations.
    fn brute(cost: &[Vec<u32>], row: usize, used: &mut Vec<bool>) -> u64 {
        if row == cost.len() {
            return 0;
        }
        let mut best = u64::MAX;
        for c in 0..cost[0].len() {
            if !used[c] {
                used[c] = true;
                let sub = brute(cost, row + 1, used);
                if sub != u64::MAX {
                    best = best.min(cost[row][c] as u64 + sub);
                }
                used[c] = false;
            }
        }
        best
    }

    let mut rng = SplitMix64::new(0xA007);
    for _ in 0..128 {
        let rows = rng.range_usize(1, 4);
        let cols = rows + rng.range_usize(0, 3);
        let cost: Vec<Vec<u32>> = (0..rows)
            .map(|_| (0..cols).map(|_| rng.bounded(1000) as u32).collect())
            .collect();
        let assign = min_cost_assignment(&cost);

        // Injective.
        let mut seen = assign.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), rows);

        let got: u64 = assign
            .iter()
            .enumerate()
            .map(|(r, &c)| cost[r][c] as u64)
            .sum();
        assert_eq!(got, brute(&cost, 0, &mut vec![false; cols]));
    }
}

// --- whole-stack properties ------------------------------------------

#[test]
fn random_straightline_programs_run_identically_under_every_policy() {
    let mut rng = SplitMix64::new(0xA008);
    for _ in 0..24 {
        // Build a random straight-line ALU program over registers r1..r7.
        let mut b = ProgramBuilder::new();
        for i in 1..8 {
            b.li(IntReg::new(i), (i as i32 - 4) * 1234567);
        }
        for _ in 0..rng.range_usize(1, 40) {
            let rd = IntReg::new(rng.range_usize(1, 8) as u8);
            let rs = IntReg::new(rng.range_usize(1, 8) as u8);
            let rt = IntReg::new(rng.range_usize(1, 8) as u8);
            match rng.bounded(6) {
                0 => b.add(rd, rs, rt),
                1 => b.sub(rd, rs, rt),
                2 => b.and(rd, rs, rt),
                3 => b.or(rd, rs, rt),
                4 => b.xor(rd, rs, rt),
                _ => b.slt(rd, rs, rt),
            };
        }
        b.halt();
        let program = b.build().expect("valid by construction");

        // The architectural result is policy-independent.
        let mut reference = Vm::new(&program);
        reference.run(10_000).expect("runs");

        for kind in fua::steer::SteeringKind::FIGURE4 {
            let mut sim = Simulator::new(
                MachineConfig::paper_default(),
                SteeringConfig::paper_scheme(kind, true),
            );
            let result = sim.run_program(&program, 10_000).expect("runs");
            assert_eq!(result.retired, reference.retired());
            assert!(result.halted);
        }
    }
}

// --- static analysis soundness ----------------------------------------

/// Checks every retired FU operation of `program` against the static
/// predictions of `fua-analysis`: a definite abstract bit or case must
/// match the concrete trace, and a tracked integer abstraction must
/// admit the concrete operand value. Returns how many ops were checked.
fn assert_static_predictions_sound(name: &str, program: &fua::isa::Program, limit: u64) -> u64 {
    use fua::analysis::InfoBitAnalysis;

    let analysis = InfoBitAnalysis::run(program);
    let mut vm = Vm::new(program);
    let mut checked = 0u64;
    vm.run_with(limit, |op| {
        let Some(fu) = op.fu else { return };
        let idx = op.static_idx as usize;
        assert!(
            analysis.is_reachable(idx),
            "{name}: #{idx} retired but statically unreachable"
        );
        let p = analysis
            .prediction(idx)
            .unwrap_or_else(|| panic!("{name}: #{idx} retired an FU op with no prediction"));
        assert_eq!(p.class, fu.class, "{name}: #{idx} FU class");
        if let Some(bit) = p.op1.definite() {
            assert_eq!(bit, fu.op1.info_bit(), "{name}: #{idx} op1 info bit");
        }
        if let Some(bit) = p.op2.definite() {
            assert_eq!(bit, fu.op2.info_bit(), "{name}: #{idx} op2 info bit");
        }
        if let Some(case) = p.case() {
            assert_eq!(case, fu.case(), "{name}: #{idx} case");
        }
        for (port, word, abs) in [(1, fu.op1, p.op1_int), (2, fu.op2, p.op2_int)] {
            if let (true, Some(a)) = (word.is_int(), abs) {
                assert!(
                    a.admits(word.as_int()),
                    "{name}: #{idx} op{port} abstraction {a:?} excludes {}",
                    word.as_int()
                );
            }
        }
        checked += 1;
    })
    .unwrap_or_else(|e| panic!("{name}: {e}"));
    checked
}

#[test]
fn static_predictions_are_sound_on_every_workload_kernel() {
    let mut total = 0;
    for w in fua::workloads::all(1) {
        total += assert_static_predictions_sound(w.name, &w.program, 50_000);
    }
    assert!(total > 10_000, "suite retired only {total} FU ops");
}

#[test]
fn static_predictions_are_sound_on_random_programs() {
    let mut rng = SplitMix64::new(0xA009);
    for round in 0..48 {
        // Straight-line programs over r1..r7 with a wider op mix than the
        // policy test above: immediates, shifts, and multiplies exercise
        // the width-tracking transfer functions, and full-range random
        // constants exercise the constant domain.
        let mut b = ProgramBuilder::new();
        for i in 1..8 {
            b.li(IntReg::new(i), rng.next_u64() as i32);
        }
        for _ in 0..rng.range_usize(1, 40) {
            let rd = IntReg::new(rng.range_usize(1, 8) as u8);
            let rs = IntReg::new(rng.range_usize(1, 8) as u8);
            let rt = IntReg::new(rng.range_usize(1, 8) as u8);
            match rng.bounded(12) {
                0 => b.add(rd, rs, rt),
                1 => b.sub(rd, rs, rt),
                2 => b.and(rd, rs, rt),
                3 => b.or(rd, rs, rt),
                4 => b.xor(rd, rs, rt),
                5 => b.slt(rd, rs, rt),
                6 => b.mul(rd, rs, rt),
                7 => b.addi(rd, rs, rng.next_u64() as i32 % 1000),
                8 => b.andi(rd, rs, rng.next_u64() as i32),
                9 => b.slli(rd, rs, rng.bounded(32) as i32),
                10 => b.srli(rd, rs, rng.bounded(32) as i32),
                _ => b.srai(rd, rs, rng.bounded(32) as i32),
            };
        }
        b.halt();
        let program = b.build().expect("valid by construction");
        let name = format!("random #{round}");
        let checked = assert_static_predictions_sound(&name, &program, 10_000);
        assert!(checked > 0, "{name} retired no FU ops");
    }
}
