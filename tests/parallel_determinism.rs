//! Integration: the parallel executor's headline guarantee. A sweep run
//! with `--jobs N` must produce artifacts that are **byte-identical** to
//! the serial (`--jobs 1`) run once the wall-clock-only sections are set
//! aside — and `fua report` must diff the two to exactly zero findings.

use fua::core::{figure4, figure4_jobs, headline, headline_jobs, ExperimentConfig, Unit};
use fua::exec::Jobs;
use fua::report::{bench_suite_jobs, compare, BenchReport, Tolerance};

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        inst_limit: 1_500,
        ..ExperimentConfig::quick()
    }
}

/// Strips the fields that are wall-clock (or label) by design, leaving
/// only model output: phase timers, the parallel section, and the tag.
fn normalized(report: &BenchReport) -> BenchReport {
    let mut r = report.clone();
    r.manifest.tag = "normalized".to_string();
    r.phase_nanos = fua::report::PhaseNanos([0; 5]);
    r.parallel = None;
    // The harness digest is wall-clock (utilization, imbalance) and
    // records the worker count itself.
    r.harness = None;
    // Simulated cycles and retired instructions are model output and
    // stay compared; only the hot-loop timer is wall-clock.
    if let Some(t) = r.throughput.as_mut() {
        t.hot_nanos = 1_000_000;
    }
    r
}

#[test]
fn report_diffs_serial_vs_parallel_to_zero_findings() {
    let serial = bench_suite_jobs("serial", &tiny_config(), 512, Jobs::serial());
    let parallel = bench_suite_jobs("parallel", &tiny_config(), 512, Jobs::new(4).unwrap());

    // The CI gate's exact criterion, in both directions.
    let forward = compare(&serial, &parallel, &Tolerance::default());
    assert!(
        forward.findings.is_empty(),
        "serial->parallel findings: {:?}",
        forward.findings
    );
    let backward = compare(&parallel, &serial, &Tolerance::default());
    assert!(
        backward.findings.is_empty(),
        "parallel->serial findings: {:?}",
        backward.findings
    );
}

#[test]
fn artifacts_are_byte_identical_modulo_wall_clock() {
    let serial = bench_suite_jobs("a", &tiny_config(), 512, Jobs::serial());
    let parallel = bench_suite_jobs("b", &tiny_config(), 512, Jobs::new(3).unwrap());

    // Every model field is exactly equal — floats bit-for-bit, because
    // the parallel fold follows the serial merge order.
    assert_eq!(serial.ialu, parallel.ialu);
    assert_eq!(serial.fpau, parallel.fpau);
    assert_eq!(serial.operands, parallel.operands);
    assert_eq!(serial.ialu_occupancy, parallel.ialu_occupancy);
    assert_eq!(serial.fpau_occupancy, parallel.fpau_occupancy);
    assert_eq!(serial.telemetry, parallel.telemetry);
    assert_eq!(
        serial.headline_ialu_pct.to_bits(),
        parallel.headline_ialu_pct.to_bits()
    );
    assert_eq!(
        serial.headline_fpau_pct.to_bits(),
        parallel.headline_fpau_pct.to_bits()
    );
    assert_eq!(
        serial.headline_ialu_compiler_pct.to_bits(),
        parallel.headline_ialu_compiler_pct.to_bits()
    );

    // ... and so is the rendered artifact, byte for byte, once the
    // wall-clock-only sections are normalized away.
    assert_eq!(
        normalized(&serial).to_json().pretty(),
        normalized(&parallel).to_json().pretty()
    );
}

#[test]
fn the_parallel_section_records_the_fan_out() {
    let report = bench_suite_jobs("p", &tiny_config(), 512, Jobs::new(2).unwrap());
    let p = report.parallel.expect("parallel section present");
    assert_eq!(p.jobs, 2);
    assert!(p.wall_nanos > 0, "wall-clock must be recorded");
    let cells: u64 = p.workers.iter().map(|w| w.cells).sum();
    // 15 profiling runs + 2 units × (swap pass + scheme sweep) +
    // 15 telemetry runs — the exact count is an implementation detail,
    // but every stage must be accounted for.
    assert!(cells > 100, "only {cells} cells accounted for");
}

#[test]
fn figures_and_headline_match_their_serial_twins() {
    let config = tiny_config();
    let jobs = Jobs::new(4).unwrap();

    let fig_serial = figure4(Unit::Ialu, &config);
    let fig_parallel = figure4_jobs(Unit::Ialu, &config, jobs);
    assert_eq!(fig_serial.rows, fig_parallel.rows);
    assert_eq!(
        fig_serial.baseline_switched_bits,
        fig_parallel.baseline_switched_bits
    );

    let h_serial = headline(&config);
    let h_parallel = headline_jobs(&config, jobs);
    assert_eq!(h_serial.ialu_pct.to_bits(), h_parallel.ialu_pct.to_bits());
    assert_eq!(h_serial.fpau_pct.to_bits(), h_parallel.fpau_pct.to_bits());
    assert_eq!(
        h_serial.ialu_compiler_pct.to_bits(),
        h_parallel.ialu_compiler_pct.to_bits()
    );
}
