//! Integration: `EnergyLedger` edge cases through a real simulation —
//! an empty (halt-only) run and a single-FU-op run must behave
//! sensibly under snapshot, delta and accumulate, and the attribution
//! sink must agree with the ledger even when there is (almost) nothing
//! to attribute.

use fua::attr::AttributionSink;
use fua::isa::{FuClass, IntReg, Program, ProgramBuilder};
use fua::power::EnergyLedger;
use fua::sim::{MachineConfig, Simulator, SteeringConfig};

fn halt_only() -> Program {
    let mut b = ProgramBuilder::new();
    b.halt();
    b.build().unwrap()
}

fn single_add() -> Program {
    let mut b = ProgramBuilder::new();
    b.add(IntReg::new(1), IntReg::new(0), IntReg::new(0));
    b.halt();
    b.build().unwrap()
}

fn run(program: &Program) -> (fua::sim::SimResult, AttributionSink) {
    let mut sim = Simulator::with_sink(
        MachineConfig::paper_default(),
        SteeringConfig::original(),
        AttributionSink::new(),
    );
    let result = sim.run_program(program, 1_000).expect("runs");
    let sink = sim.into_sink();
    (result, sink)
}

#[test]
fn a_halt_only_run_charges_nothing() {
    let (result, sink) = run(&halt_only());
    assert_eq!(result.ledger, EnergyLedger::new(), "no FU ops, no charges");
    assert_eq!(result.ledger.total_switched_bits(), 0);
    for class in FuClass::ALL {
        assert_eq!(result.ledger.ops(class), 0);
    }

    // The attribution partition of an empty run is the empty map, and
    // it still reassembles the (empty) ledger exactly.
    assert!(sink.is_empty());
    assert_eq!(sink.ledger(), result.ledger);

    // Snapshot/delta around an empty run: everything stays empty.
    let snap = result.ledger;
    assert_eq!(result.ledger.delta_since(&snap), EnergyLedger::new());
    let mut rebuilt = EnergyLedger::new();
    rebuilt.accumulate(result.ledger.switched_array(), result.ledger.ops_array());
    assert_eq!(rebuilt, result.ledger);
}

#[test]
fn a_single_alu_op_run_charges_exactly_one_op() {
    let (result, sink) = run(&single_add());
    assert_eq!(result.ledger.ops(FuClass::IntAlu), 1, "one IALU op retired");
    for class in [FuClass::IntMul, FuClass::FpAlu, FuClass::FpMul] {
        assert_eq!(result.ledger.ops(class), 0, "{class}: must stay idle");
        assert_eq!(result.ledger.switched_bits(class), 0);
    }

    // The single charge is attributed to the single site, exactly.
    assert_eq!(sink.site_count(), 1);
    assert_eq!(sink.ledger(), result.ledger);
    let (key, stat) = sink.sites().next().unwrap();
    assert_eq!(key.pc, 0, "the add is the first static instruction");
    assert_eq!(key.class, FuClass::IntAlu);
    assert_eq!(stat.ops, 1);
    assert_eq!(stat.bits, result.ledger.switched_bits(FuClass::IntAlu));

    // Snapshot before, delta after: the whole run is the delta.
    let empty = EnergyLedger::new();
    let delta = result.ledger.delta_since(&empty);
    assert_eq!(delta, result.ledger);
    let mut rebuilt = empty;
    rebuilt.accumulate(delta.switched_array(), delta.ops_array());
    assert_eq!(rebuilt, result.ledger);
}
