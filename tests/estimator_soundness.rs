//! Integration: the static switched-bit estimator's soundness property.
//!
//! For every bundled workload, every named steering scheme, and every
//! swap setting, the static per-PC bound must dominate the bits the
//! exact dynamic attribution measures at that PC:
//! `bits_per_op × ops(pc) ≥ measured_bits(pc)`. The estimator only
//! knows the scheme's swap model (program order vs either order for
//! commutative ops), so one estimate per model covers every scheme that
//! shares it — which is exactly what these tests exercise.

use fua::analysis::{estimate_transitions, SwapModel};
use fua::attr::{attribute_with_config, check_attribution, check_workload, Scheme};
use fua::sim::SteeringConfig;
use fua::steer::SteeringKind;

/// Retired-instruction cap per run: enough to execute every kernel's
/// hot loop several times while keeping 15 × 6 × 2 runs fast.
const LIMIT: u64 = 2_000;

#[test]
fn bounds_dominate_attribution_for_every_workload_and_scheme() {
    for w in fua::workloads::all(1) {
        for scheme in Scheme::ALL {
            let check = check_workload(&w, scheme, LIMIT);
            assert!(
                check.sound(),
                "{} under {}: {} violated bound(s), first {:?}",
                w.name,
                scheme.name(),
                check.violations.len(),
                check.violations.first()
            );
            assert!(check.pcs > 0, "{}: nothing charged", w.name);
            assert!(
                check.ratio() >= 1.0,
                "{} under {}: aggregate ratio {} < 1",
                w.name,
                scheme.name(),
                check.ratio()
            );
        }
    }
}

#[test]
fn bounds_dominate_attribution_with_hardware_swap_disabled() {
    // The named schemes all enable the hardware swap; cover the
    // swap-disabled variants explicitly. With `hardware_swap: false`
    // no swap rule is installed and the policies get no swap
    // permission, so operands latch in program order and the Direct
    // model must already be sound.
    let kinds = [
        (SteeringKind::FullHam, "fullham/noswap"),
        (SteeringKind::OneBitHam, "1bitham/noswap"),
        (SteeringKind::Lut { slots: 1 }, "lut2/noswap"),
        (SteeringKind::Lut { slots: 2 }, "lut4/noswap"),
        (SteeringKind::Lut { slots: 4 }, "lut8/noswap"),
    ];
    for w in fua::workloads::all(1) {
        let est = estimate_transitions(&w.program, SwapModel::Direct);
        for (kind, label) in kinds {
            let config = SteeringConfig::paper_scheme(kind, false);
            let run = attribute_with_config(&w, config, label, LIMIT);
            let check = check_attribution(&est, &run.attribution);
            assert!(
                check.sound(),
                "{} under {label}: {:?}",
                w.name,
                check.violations.first()
            );
            assert!(check.ratio() >= 1.0, "{} under {label}", w.name);
        }
    }
}

#[test]
fn the_either_model_also_covers_swap_free_runs() {
    // Either admits a superset of Direct's latch orders, so the looser
    // estimate must stay sound against the naive machine too — the
    // containment the per-scheme model assignment relies on.
    for name in ["compress", "turb3d"] {
        let w = fua::workloads::by_name(name, 1).unwrap();
        let est = estimate_transitions(&w.program, SwapModel::Either);
        let run = attribute_with_config(&w, SteeringConfig::original(), "naive", LIMIT);
        let check = check_attribution(&est, &run.attribution);
        assert!(check.sound(), "{name}: {:?}", check.violations.first());
    }
}
