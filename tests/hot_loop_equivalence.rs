//! Integration: the data-layout-rewritten hot loop must be observably
//! indistinguishable from the original pointer-chasing engine.
//!
//! [`ReferenceSimulator`] is a frozen copy of the pre-rewrite pipeline
//! (per-instruction `Entry` structs in a `VecDeque`, linear window scans,
//! dependency checks that chase producer entries). [`Simulator`] is the
//! struct-of-arrays rewrite (ring-buffer slots, age-indexed ready
//! bitmasks, a completion wheel, consumer wakeup lists). This test pins
//! the rewrite to the reference engine at full trace granularity: for
//! every bundled workload, across every paper steering scheme with and
//! without the hardware/multiplier swap rules, both engines must emit the
//! *identical* event stream — same cycles, same issue order, same steer
//! decisions, same swap events, same per-slot stall attribution — and
//! agree on every architectural counter.
//!
//! Comparing the full [`VecSink`] streams subsumes weaker checks
//! (retirement stream, ledger, stall digest) because every one of those
//! is derived from the events; the [`StallSink`] digest is compared too
//! so a failure prints a readable per-site diff instead of a giant
//! event-vector dump.

use fua::sim::{MachineConfig, ReferenceSimulator, Simulator, SteeringConfig};
use fua::steer::SteeringKind;
use fua::swap::MultiplierSwapRule;
use fua::trace::{StallSink, TraceEvent, VecSink};
use fua::workloads::all;

// Coverage here comes from the scheme × workload sweep, not trace
// length; 15k instructions wraps the ROB ring and the completion wheel
// hundreds of times while keeping the full sweep affordable in debug
// builds.
const LIMIT: u64 = 15_000;

/// Every steering configuration exercised by the equivalence sweep:
/// the unmodified baseline, plus each Figure-4 scheme with the hardware
/// swap both off and on, plus one multiplier-swap variant (value-based
/// swapping takes a different code path from the case-based rules).
fn schemes() -> Vec<(String, SteeringConfig)> {
    let mut out = vec![("original".to_string(), SteeringConfig::original())];
    for kind in SteeringKind::FIGURE4 {
        for hw_swap in [false, true] {
            out.push((
                format!("{kind:?}/hw_swap={hw_swap}"),
                SteeringConfig::paper_scheme(kind, hw_swap),
            ));
        }
    }
    out.push((
        "Lut{2}/hw_swap+mul_swap".to_string(),
        SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true)
            .with_multiplier_swap(MultiplierSwapRule::new()),
    ));
    out
}

/// Runs one engine over one workload, returning the full event stream,
/// the stall digest and the scalar outcome.
type Outcome = (Vec<TraceEvent>, StallSink, fua::sim::SimResult);

fn run_new(
    config: &MachineConfig,
    steering: SteeringConfig,
    w: &fua::workloads::Workload,
) -> Outcome {
    let sink = (VecSink::new(), StallSink::new());
    let mut sim = Simulator::with_sink(config.clone(), steering, sink);
    let result = sim
        .run_program(&w.program, LIMIT)
        .unwrap_or_else(|e| panic!("{}: rewrite faulted: {e}", w.name));
    let (events, stalls) = sim.into_sink();
    (events.events, stalls, result)
}

fn run_reference(
    config: &MachineConfig,
    steering: SteeringConfig,
    w: &fua::workloads::Workload,
) -> Outcome {
    let sink = (VecSink::new(), StallSink::new());
    let mut sim = ReferenceSimulator::with_sink(config.clone(), steering, sink);
    let result = sim
        .run_program(&w.program, LIMIT)
        .unwrap_or_else(|e| panic!("{}: reference faulted: {e}", w.name));
    let (events, stalls) = sim.into_sink();
    (events.events, stalls, result)
}

fn assert_equivalent(tag: &str, new: &Outcome, reference: &Outcome) {
    let (new_events, new_stalls, new_result) = new;
    let (ref_events, ref_stalls, ref_result) = reference;

    // Scalar outcomes first: cheapest to read when something diverges.
    assert_eq!(new_result.cycles, ref_result.cycles, "{tag}: cycles");
    assert_eq!(new_result.retired, ref_result.retired, "{tag}: retired");
    assert_eq!(new_result.halted, ref_result.halted, "{tag}: halted");
    assert_eq!(new_result.ledger, ref_result.ledger, "{tag}: energy ledger");
    assert_eq!(new_result.swaps, ref_result.swaps, "{tag}: swap counters");
    assert_eq!(
        new_result.branches, ref_result.branches,
        "{tag}: branch stats"
    );
    assert_eq!(new_result.cache, ref_result.cache, "{tag}: cache stats");

    // Stall digest: exact per-(reason, case, class) slot counts.
    assert_eq!(
        new_stalls.sites(),
        ref_stalls.sites(),
        "{tag}: stall digest sites"
    );
    assert_eq!(
        new_stalls.total_slots(),
        ref_stalls.total_slots(),
        "{tag}: stall slot total"
    );

    // The full event stream, element by element so a divergence reports
    // its position and both variants rather than dumping two vectors.
    assert_eq!(
        new_events.len(),
        ref_events.len(),
        "{tag}: event stream length"
    );
    for (i, (a, b)) in new_events.iter().zip(ref_events.iter()).enumerate() {
        assert_eq!(a, b, "{tag}: event streams diverge at index {i}");
    }
}

#[test]
fn rewrite_matches_reference_for_every_workload_and_scheme() {
    let config = MachineConfig::paper_default();
    for w in all(1) {
        for (name, _) in schemes() {
            // `SteeringConfig` is not `Clone` (it boxes policies), so
            // rebuild the scheme fresh for each engine.
            let find = |schemes: Vec<(String, SteeringConfig)>| {
                schemes
                    .into_iter()
                    .find(|(n, _)| *n == name)
                    .expect("scheme list is stable")
                    .1
            };
            let new = run_new(&config, find(schemes()), &w);
            let reference = run_reference(&config, find(schemes()), &w);
            assert_equivalent(&format!("{}/{name}", w.name), &new, &reference);
        }
    }
}

#[test]
fn rewrite_matches_reference_on_a_narrow_machine() {
    // A 2-wide machine with a tiny window forces every structural stall
    // (RobFull, RsFull, skid-buffer pressure) that the paper machine's
    // generous window rarely exhibits.
    let mut config = MachineConfig::paper_default();
    config.fetch_width = 2;
    config.commit_width = 2;
    config.rob_size = 8;
    config.rs_entries = 2;
    config.mem_ports = 1;
    for w in all(1) {
        let new = run_new(
            &config,
            SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true),
            &w,
        );
        let reference = run_reference(
            &config,
            SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true),
            &w,
        );
        assert_equivalent(&format!("{}/narrow", w.name), &new, &reference);
    }
}

#[test]
fn rewrite_matches_reference_in_order() {
    // In-order issue takes the other select_ready branch (the bitmask
    // scan must stop at the first non-ready head, not skip past it).
    let mut config = MachineConfig::paper_default();
    config.in_order_issue = true;
    for w in all(1) {
        let new = run_new(&config, SteeringConfig::original(), &w);
        let reference = run_reference(&config, SteeringConfig::original(), &w);
        assert_equivalent(&format!("{}/in_order", w.name), &new, &reference);
    }
}
