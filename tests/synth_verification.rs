//! Integration: the synthesised routing logic must compute *exactly* the
//! steering decisions the behavioural LUT makes, for every unit, width
//! and home strategy — the classic "netlist equals RTL" check.

use fua::isa::{Case, FP_MANTISSA_BITS, INT_BITS};
use fua::stats::CaseProfile;
use fua::steer::{HomeStrategy, LutBuilder, PAPER_FPAU_OCCUPANCY, PAPER_IALU_OCCUPANCY};
use fua::synth::{minimize, routing_cost, TruthTable};

fn configurations() -> Vec<(&'static str, CaseProfile, u32, &'static [f64])> {
    vec![
        (
            "IALU",
            CaseProfile::paper_ialu(),
            INT_BITS,
            &PAPER_IALU_OCCUPANCY,
        ),
        (
            "FPAU",
            CaseProfile::paper_fpau(),
            FP_MANTISSA_BITS,
            &PAPER_FPAU_OCCUPANCY,
        ),
    ]
}

#[test]
fn minimised_logic_matches_every_lut_exactly() {
    for (unit, profile, width, occupancy) in configurations() {
        for strategy in [
            HomeStrategy::Auto,
            HomeStrategy::Unique,
            HomeStrategy::Proportional,
            HomeStrategy::Search,
        ] {
            for slots in [1usize, 2, 4] {
                let lut = LutBuilder::new(profile, width)
                    .occupancy(occupancy)
                    .modules(4)
                    .strategy(strategy)
                    .build(slots);
                let tt = TruthTable::from_lut(&lut);
                for o in 0..tt.outputs() {
                    let sop = minimize(&tt, o);
                    for m in 0..(1u16 << tt.inputs()) {
                        assert_eq!(
                            sop.eval(m),
                            tt.output(m, o),
                            "{unit}/{strategy:?}/{slots} slots: output {o} wrong at {m:08b}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn gate_costs_grow_with_vector_width_and_rs_entries() {
    for (unit, profile, width, occupancy) in configurations() {
        let build = |slots| {
            LutBuilder::new(profile, width)
                .occupancy(occupancy)
                .modules(4)
                .build(slots)
        };
        let narrow = routing_cost(&build(1), 8, 4);
        let wide = routing_cost(&build(4), 8, 4);
        assert!(
            wide.gates >= narrow.gates,
            "{unit}: wider vectors cannot shrink the logic"
        );
        let small_rs = routing_cost(&build(2), 8, 4);
        let large_rs = routing_cost(&build(2), 32, 4);
        assert!(large_rs.gates > small_rs.gates, "{unit}: RS scaling");
        assert!(large_rs.levels >= small_rs.levels, "{unit}: RS depth");
    }
}

#[test]
fn single_issue_decisions_respect_homes() {
    // For every unit: a lone instruction of case c must land on a module
    // homed at c whenever such a module exists.
    for (unit, profile, width, occupancy) in configurations() {
        let lut = LutBuilder::new(profile, width)
            .occupancy(occupancy)
            .modules(4)
            .build(2);
        for case in Case::ALL {
            if !lut.homes().contains(&case) {
                continue;
            }
            let module = lut.entry(lut.encode(&[case]))[0] as usize;
            assert_eq!(
                lut.homes()[module],
                case,
                "{unit}: case {case} missed its home"
            );
        }
    }
}
