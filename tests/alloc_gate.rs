//! The steady-state zero-allocation gate: once a warmup run has grown
//! every lazily-sized structure (the inflight arena pool, event-wheel
//! buckets, steering tables), the untraced hot loop must allocate
//! **zero** bytes per simulated cycle, for every workload under every
//! Figure-4 scheme.
//!
//! Methodology: heap traffic of a run is `constant per-run setup +
//! per-cycle cost × cycles`. After warmup at the *longer* limit, a run
//! capped at `L` retired instructions and a run capped at `2L` must
//! therefore count **exactly equal** allocation events — any per-cycle
//! allocation shows up as a difference that scales with the cap, while
//! the constant setup (simulator construction, scheme tables, the
//! pooled arena lease) cancels.
//!
//! This file holds exactly one `#[test]` on purpose: the counting
//! allocator's counters are process-global, and a concurrently running
//! sibling test would bleed its allocations into the measurement
//! window.

use fua::sim::{MachineConfig, Simulator, SteeringConfig};
use fua::steer::SteeringKind;

#[global_allocator]
static COUNTING: fua::obs::CountingAlloc = fua::obs::CountingAlloc;

const LIMIT: u64 = 2_000;

/// One full run of `w` under `kind` on the untraced engine, as the
/// sweeps run it. Builds the scheme inside the measurement window so
/// the (constant) table construction cancels between the two runs.
fn run(w: &fua::workloads::Workload, kind: SteeringKind, limit: u64) -> u64 {
    let scheme = SteeringConfig::paper_scheme(kind, true);
    let mut sim = Simulator::new(MachineConfig::paper_default(), scheme);
    sim.run_program(&w.program, limit)
        .unwrap_or_else(|e| panic!("workload {} faulted under {kind:?}: {e}", w.name))
        .cycles
}

/// Allocation events performed by one run.
fn measured_allocs(w: &fua::workloads::Workload, kind: SteeringKind, limit: u64) -> u64 {
    let before = fua::obs::alloc_snapshot();
    let cycles = run(w, kind, limit);
    let delta = fua::obs::alloc_snapshot().delta(&before);
    assert!(cycles > 0, "workload {} simulated no cycles", w.name);
    delta.allocs
}

#[test]
fn the_steady_state_hot_loop_allocates_nothing_per_cycle() {
    assert!(
        !fua::obs::counting_allocator_active() || fua::obs::alloc_snapshot().allocs > 0,
        "sanity: the counting allocator reports consistently"
    );
    // The harness itself proves the wrapper is installed: loading the
    // workloads below allocates, flipping the active flag.
    let workloads = fua::workloads::all(1);
    assert!(
        fua::obs::counting_allocator_active(),
        "the counting allocator must be installed in this test binary"
    );

    let mut checked = 0u32;
    for w in &workloads {
        for kind in SteeringKind::FIGURE4 {
            // Warmup at the longer limit amortises every structure that
            // grows with run length, so neither measured run resizes.
            run(w, kind, 2 * LIMIT);
            let short = measured_allocs(w, kind, LIMIT);
            let long = measured_allocs(w, kind, 2 * LIMIT);
            assert_eq!(
                short,
                long,
                "workload {} under {kind:?}: a {}-instruction run allocated {} event(s), \
                 a {}-instruction run {} — the difference is per-cycle allocation \
                 in the steady-state hot loop",
                w.name,
                LIMIT,
                short,
                2 * LIMIT,
                long
            );
            checked += 1;
        }
    }
    assert_eq!(
        checked,
        workloads.len() as u32 * SteeringKind::FIGURE4.len() as u32,
        "every workload x scheme cell must be gated"
    );
}
