//! Integration: energy attribution must be an *exact partition* — the
//! per-site switched-bit sums must reproduce the final `EnergyLedger`
//! bit-for-bit for every steering scheme × swap variant, attaching the
//! sink must not perturb the simulation, and the parallel path must be
//! byte-identical to the serial one.

use fua::attr::{
    attribute_suite, attribute_workload, AttributionDiff, AttributionSink, EnergyAttribution,
    Scheme,
};
use fua::exec::Jobs;
use fua::isa::FuClass;
use fua::power::EnergyLedger;
use fua::sim::{Simulator, SteeringConfig};
use fua::steer::SteeringKind;
use fua::workloads::Workload;

const LIMIT: u64 = 10_000;

fn workload(name: &str) -> Workload {
    fua::workloads::by_name(name, 1).expect("bundled workload")
}

/// One integer and one floating-point workload exercise all four FU
/// classes (the FP programs still run integer address arithmetic).
fn sample_pair() -> [Workload; 2] {
    [workload("compress"), workload("turb3d")]
}

#[test]
fn attribution_is_an_exact_partition_for_every_scheme_and_swap() {
    for kind in SteeringKind::FIGURE4 {
        for hw_swap in [false, true] {
            for w in sample_pair() {
                let mut sim = Simulator::with_sink(
                    fua::sim::MachineConfig::paper_default(),
                    SteeringConfig::paper_scheme(kind, hw_swap),
                    AttributionSink::new(),
                );
                let result = sim.run_program(&w.program, LIMIT).expect("runs");
                let sink = sim.into_sink();

                // The site map is a partition of the run: re-summing it
                // must reproduce the simulator's own ledger exactly.
                assert_eq!(
                    sink.ledger(),
                    result.ledger,
                    "{kind:?} hw_swap={hw_swap} {}: site sums vs ledger",
                    w.name
                );

                // Provenance must be well-formed: every site points at a
                // real static instruction inside a real basic block.
                let profile =
                    EnergyAttribution::build(w.name, &format!("{kind:?}"), &w.program, &sink);
                assert_eq!(profile.ledger(), result.ledger);
                for row in profile.rows() {
                    assert!(
                        (row.key.pc as usize) < w.program.len(),
                        "{kind:?} hw_swap={hw_swap} {}: pc{} out of program range",
                        w.name,
                        row.key.pc
                    );
                    assert!(
                        row.block.is_some(),
                        "{kind:?} hw_swap={hw_swap} {}: pc{} resolved to no basic block",
                        w.name,
                        row.key.pc
                    );
                    assert_ne!(row.opcode, "?");
                }

                // The per-pc, per-case and per-module views are each a
                // re-grouping of the same partition.
                let total: u64 = result.ledger.total_switched_bits();
                assert_eq!(profile.pc_bits().values().sum::<u64>(), total);
                let by_case: u64 = FuClass::ALL
                    .iter()
                    .map(|c| profile.case_bits(*c).iter().sum::<u64>())
                    .sum();
                assert_eq!(by_case, total);
                let by_module: u64 = FuClass::ALL
                    .iter()
                    .map(|c| profile.module_bits(*c).iter().sum::<u64>())
                    .sum();
                assert_eq!(by_module, total);
            }
        }
    }
}

#[test]
fn profiled_run_is_cycle_identical_to_an_unprofiled_one() {
    for scheme in Scheme::ALL {
        for w in sample_pair() {
            let mut bare =
                Simulator::new(fua::sim::MachineConfig::paper_default(), scheme.config());
            let baseline = bare.run_program(&w.program, LIMIT).expect("runs");

            let run = attribute_workload(&w, scheme, LIMIT);
            assert_eq!(run.result.cycles, baseline.cycles, "{scheme:?} {}", w.name);
            assert_eq!(
                run.result.retired, baseline.retired,
                "{scheme:?} {}",
                w.name
            );
            assert_eq!(run.result.ledger, baseline.ledger, "{scheme:?} {}", w.name);
            assert!(run.exact(), "{scheme:?} {}: attribution not exact", w.name);
        }
    }
}

#[test]
fn parallel_attribution_is_byte_identical_to_serial() {
    let workloads = fua::workloads::all(1);
    for scheme in [Scheme::Naive, Scheme::Lut4] {
        let serial = attribute_suite(&workloads, scheme, LIMIT, Jobs::serial());
        let parallel = attribute_suite(&workloads, scheme, LIMIT, Jobs::new(4).expect("positive"));
        let render = |runs: &[fua::attr::AttributedRun]| {
            let mut flame = String::new();
            let mut json = String::new();
            for r in runs {
                flame.push_str(&r.attribution.collapsed_stacks());
                json.push_str(&r.attribution.to_json().pretty());
                json.push('\n');
            }
            (flame, json)
        };
        assert_eq!(
            render(&serial),
            render(&parallel),
            "{scheme:?}: jobs 4 vs 1"
        );
    }
}

#[test]
fn differential_attribution_of_identical_runs_is_zero() {
    for w in sample_pair() {
        let a = attribute_workload(&w, Scheme::Lut4, LIMIT);
        let b = attribute_workload(&w, Scheme::Lut4, LIMIT);
        let diff = AttributionDiff::between(&a.attribution, &b.attribution);
        assert!(diff.is_zero(), "{}: self-diff must be zero", w.name);
        assert_eq!(diff.total_delta(), 0);
        assert!(diff.movers.is_empty());
    }
}

#[test]
fn differential_attribution_reconciles_with_the_ledgers() {
    for w in sample_pair() {
        let a = attribute_workload(&w, Scheme::Naive, LIMIT);
        let b = attribute_workload(&w, Scheme::Lut4, LIMIT);
        let diff = AttributionDiff::between(&a.attribution, &b.attribution);

        let total = |l: &EnergyLedger| l.total_switched_bits();
        assert_eq!(diff.total_a, total(&a.result.ledger));
        assert_eq!(diff.total_b, total(&b.result.ledger));
        assert_eq!(
            diff.total_delta(),
            diff.total_b as i128 - diff.total_a as i128
        );

        // The movers decompose the total delta exactly.
        let mover_sum: i128 = diff.movers.iter().map(|m| m.delta).sum();
        assert_eq!(mover_sum, diff.total_delta(), "{}: movers", w.name);

        // And so do the per-class module/case splits.
        let class_sum: i128 = diff
            .classes
            .iter()
            .map(|c| c.module_delta.iter().sum::<i128>())
            .sum();
        assert_eq!(class_sum, diff.total_delta(), "{}: module split", w.name);
        let case_sum: i128 = diff
            .classes
            .iter()
            .map(|c| c.case_delta.iter().sum::<i128>())
            .sum();
        assert_eq!(case_sum, diff.total_delta(), "{}: case split", w.name);
    }
}

#[test]
fn flamegraph_weights_sum_to_the_ledger() {
    for w in sample_pair() {
        let run = attribute_workload(&w, Scheme::Lut4, LIMIT);
        let total: u64 = run.result.ledger.total_switched_bits();
        let mut sum = 0u64;
        for line in run.attribution.collapsed_stacks().lines() {
            let (frames, weight) = line.rsplit_once(' ').expect("collapsed-stack line");
            assert!(frames.starts_with(&format!("{};", w.name)));
            assert_eq!(frames.split(';').count(), 3, "workload;block;pc frames");
            sum += weight.parse::<u64>().expect("integer weight");
        }
        assert_eq!(sum, total, "{}: flame weights vs ledger", w.name);
    }
}
