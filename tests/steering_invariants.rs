//! Integration: steering is a power optimisation, never a semantic or
//! timing change. Every policy must retire the same instructions, issue
//! the same operation counts per FU class, and never exceed the
//! baseline's switched bits on the units it optimises (for the
//! cost-aware policies).

use fua::isa::FuClass;
use fua::sim::{MachineConfig, SimResult, Simulator, SteeringConfig};
use fua::steer::SteeringKind;

const LIMIT: u64 = 40_000;

fn run(workload: &str, kind: SteeringKind, swap: bool) -> SimResult {
    let w = fua::workloads::by_name(workload, 1).expect("bundled workload");
    let mut sim = Simulator::new(
        MachineConfig::paper_default(),
        SteeringConfig::paper_scheme(kind, swap),
    );
    sim.run_program(&w.program, LIMIT).expect("runs")
}

#[test]
fn all_policies_execute_identical_work() {
    for workload in ["compress", "go", "swim", "turb3d"] {
        let baseline = run(workload, SteeringKind::Original, false);
        for kind in SteeringKind::FIGURE4 {
            let r = run(workload, kind, true);
            assert_eq!(
                r.retired, baseline.retired,
                "{workload}/{kind}: retire count"
            );
            assert_eq!(r.cycles, baseline.cycles, "{workload}/{kind}: cycle count");
            for class in FuClass::ALL {
                assert_eq!(
                    r.ledger.ops(class),
                    baseline.ledger.ops(class),
                    "{workload}/{kind}: op count on {class}"
                );
            }
        }
    }
}

#[test]
fn full_ham_never_loses_to_fcfs() {
    // Full Ham optimises each cycle exactly; over any workload it cannot
    // switch more bits than arrival-order routing on the duplicated
    // units.
    for workload in ["compress", "li", "mgrid", "fpppp"] {
        let baseline = run(workload, SteeringKind::Original, false);
        let optimal = run(workload, SteeringKind::FullHam, false);
        for class in [FuClass::IntAlu, FuClass::FpAlu] {
            assert!(
                optimal.ledger.switched_bits(class) <= baseline.ledger.switched_bits(class),
                "{workload}: Full Ham regressed on {class}: {} > {}",
                optimal.ledger.switched_bits(class),
                baseline.ledger.switched_bits(class)
            );
        }
    }
}

#[test]
fn swapping_preserves_timing() {
    // Operand swapping changes which port sees which value, never when
    // anything executes.
    for workload in ["ijpeg", "hydro2d"] {
        let plain = run(workload, SteeringKind::Lut { slots: 2 }, false);
        let swapped = run(workload, SteeringKind::Lut { slots: 2 }, true);
        assert_eq!(plain.cycles, swapped.cycles, "{workload}: cycles changed");
        assert_eq!(plain.retired, swapped.retired);
        assert!(swapped.swaps.rule_swaps > 0, "{workload}: rule never fired");
    }
}

#[test]
fn single_module_units_are_untouched_by_steering() {
    // Multipliers have one module; every policy must charge them
    // identically (without the multiplier swap rule).
    let baseline = run("ijpeg", SteeringKind::Original, false);
    for kind in SteeringKind::FIGURE4 {
        let r = run("ijpeg", kind, false);
        assert_eq!(
            r.ledger.switched_bits(FuClass::IntMul),
            baseline.ledger.switched_bits(FuClass::IntMul),
            "{kind} perturbed the single-module multiplier"
        );
    }
}
