//! Integration: cycle attribution must be an *exact partition* — every
//! issue slot of every cycle lands in exactly one stall-taxonomy
//! bucket, so the per-site slot sums must equal `cycles × issue_width`
//! bit-for-bit for every steering scheme × swap variant, attaching the
//! stall/dependence sinks must not perturb the simulation, and the
//! parallel path must be byte-identical to the serial one.

use fua::attr::{profile_cycles_suite, profile_cycles_workload, CriticalPath, Scheme};
use fua::exec::Jobs;
use fua::sim::{MachineConfig, Simulator, SteeringConfig};
use fua::steer::SteeringKind;
use fua::trace::{DepSink, StallReason, StallSink};
use fua::workloads::Workload;

const LIMIT: u64 = 10_000;

fn workload(name: &str) -> Workload {
    fua::workloads::by_name(name, 1).expect("bundled workload")
}

/// One integer and one floating-point workload exercise all four FU
/// classes (the FP programs still run integer address arithmetic).
fn sample_pair() -> [Workload; 2] {
    [workload("compress"), workload("turb3d")]
}

#[test]
fn stall_slots_partition_the_issue_bandwidth_for_every_scheme_and_swap() {
    for kind in SteeringKind::FIGURE4 {
        for hw_swap in [false, true] {
            for w in sample_pair() {
                let machine = MachineConfig::paper_default();
                let issue_width = machine.issue_width() as u64;
                let mut sim = Simulator::with_sink(
                    machine,
                    SteeringConfig::paper_scheme(kind, hw_swap),
                    StallSink::new(),
                );
                let result = sim.run_program(&w.program, LIMIT).expect("runs");
                let sink = sim.into_sink();

                // The exact-partition invariant: summed slot counts
                // equal cycles × issue width, for every configuration.
                assert_eq!(
                    sink.total_slots(),
                    result.cycles * issue_width,
                    "{kind:?} hw_swap={hw_swap} {}: slot sums vs issue bandwidth",
                    w.name
                );

                // Re-grouping by reason is the same partition, and the
                // machine did issue work (the taxonomy is not all-stall).
                let totals = sink.reason_totals();
                assert_eq!(totals.iter().sum::<u64>(), sink.total_slots());
                assert!(totals[StallReason::Issued.index()] > 0);

                // Provenance must be well-formed: any culprit PC points
                // into the program text.
                for key in sink.sites().keys() {
                    if let Some(pc) = key.pc {
                        assert!(
                            (pc as usize) < w.program.len(),
                            "{kind:?} hw_swap={hw_swap} {}: pc{pc} out of range",
                            w.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn profiled_run_is_cycle_identical_to_an_unprofiled_one() {
    for scheme in Scheme::ALL {
        for w in sample_pair() {
            let mut bare = Simulator::new(MachineConfig::paper_default(), scheme.config());
            let baseline = bare.run_program(&w.program, LIMIT).expect("runs");

            let run = profile_cycles_workload(&w, scheme, LIMIT);
            assert_eq!(run.result.cycles, baseline.cycles, "{scheme:?} {}", w.name);
            assert_eq!(
                run.result.retired, baseline.retired,
                "{scheme:?} {}",
                w.name
            );
            assert_eq!(run.result.ledger, baseline.ledger, "{scheme:?} {}", w.name);
            assert!(
                run.exact(),
                "{scheme:?} {}: cycle attribution not exact",
                w.name
            );
            assert_eq!(
                run.cycles.total_slots(),
                baseline.cycles * run.cycles.issue_width,
                "{scheme:?} {}",
                w.name
            );
        }
    }
}

#[test]
fn critical_path_is_causally_ordered_and_fits_the_run() {
    for w in sample_pair() {
        let run = profile_cycles_workload(&w, Scheme::Lut4, LIMIT);
        let nodes = run.path.nodes();
        assert!(!nodes.is_empty(), "{}: empty critical path", w.name);
        assert!(run.path.span_cycles() <= run.result.cycles);
        for pair in nodes.windows(2) {
            // Each predecessor's result must be available before (or
            // exactly when) its consumer issues, and serials ascend.
            assert!(pair[0].serial < pair[1].serial, "{}: serial order", w.name);
            assert!(
                pair[0].done_cycle <= pair[1].issue_cycle,
                "{}: #{}/done{} feeds #{}/issue{}",
                w.name,
                pair[0].serial,
                pair[0].done_cycle,
                pair[1].serial,
                pair[1].issue_cycle
            );
        }
        for n in nodes {
            assert!(n.dispatch_cycle <= n.issue_cycle);
            assert!(n.issue_cycle < n.done_cycle);
            assert!(
                n.operand_wait + n.structural_wait <= n.issue_cycle - n.dispatch_cycle,
                "{}: #{} waits exceed the dispatch-to-issue window",
                w.name,
                n.serial
            );
        }
        assert_eq!(
            CriticalPath::extract(&w.program, &DepSink::new()).nodes(),
            []
        );
    }
}

#[test]
fn cycle_flamegraph_weights_cover_every_issue_slot() {
    for w in sample_pair() {
        let run = profile_cycles_workload(&w, Scheme::Lut4, LIMIT);
        let mut sum = 0u64;
        for line in run.cycles.collapsed_stacks().lines() {
            let (frames, weight) = line.rsplit_once(' ').expect("collapsed-stack line");
            assert!(frames.starts_with(&format!("{};", w.name)));
            sum += weight.parse::<u64>().expect("integer weight");
        }
        assert_eq!(
            sum,
            run.result.cycles * run.cycles.issue_width,
            "{}: flame weights vs issue bandwidth",
            w.name
        );
    }
}

#[test]
fn parallel_cycle_profiling_is_byte_identical_to_serial() {
    let workloads = fua::workloads::all(1);
    for scheme in [Scheme::Naive, Scheme::Lut4] {
        let serial = profile_cycles_suite(&workloads, scheme, LIMIT, Jobs::serial());
        let parallel =
            profile_cycles_suite(&workloads, scheme, LIMIT, Jobs::new(4).expect("positive"));
        let render = |runs: &[fua::attr::CycleProfiledRun]| {
            let mut flame = String::new();
            let mut json = String::new();
            for r in runs {
                flame.push_str(&r.cycles.collapsed_stacks());
                json.push_str(&r.cycles.to_json().pretty());
                json.push_str(&r.path.to_json().pretty());
                json.push('\n');
            }
            (flame, json)
        };
        assert_eq!(
            render(&serial),
            render(&parallel),
            "{scheme:?}: jobs 4 vs 1"
        );
    }
}
