//! Property: the shared [`WorkloadArena`](fua::workloads::WorkloadArena)
//! — decoded once per suite and borrowed read-only by every executor
//! worker — must hold exactly the programs a fresh decode produces, for
//! every bundled workload at every scale. If this drifts, parallel runs
//! would silently measure different programs than serial ones.

use fua::workloads::{all, by_name, WorkloadArena};

#[test]
fn arena_programs_equal_fresh_decodes_at_every_scale() {
    for scale in 1..=3u32 {
        let arena = WorkloadArena::build(scale);
        let fresh = all(scale);
        assert_eq!(arena.all().len(), fresh.len(), "scale {scale}");
        for (cached, decoded) in arena.all().iter().zip(&fresh) {
            assert_eq!(cached.name, decoded.name, "scale {scale}");
            assert_eq!(cached.category, decoded.category);
            assert_eq!(
                cached.program, decoded.program,
                "arena program for {} diverges from a fresh decode at scale {scale}",
                cached.name
            );
        }
    }
}

#[test]
fn arena_lookup_agrees_with_the_free_function() {
    for scale in 1..=2u32 {
        let arena = WorkloadArena::build(scale);
        for w in all(scale) {
            let hit = arena
                .by_name(w.name)
                .unwrap_or_else(|| panic!("{} missing from arena", w.name));
            let fresh = by_name(w.name, scale).expect("fresh lookup");
            assert_eq!(hit.program, fresh.program, "{} at scale {scale}", w.name);
        }
        assert!(arena.by_name("no-such-workload").is_none());
    }
}

#[test]
fn arena_partitions_cover_the_suite_exactly() {
    let arena = WorkloadArena::build(1);
    let total = arena.integer().len() + arena.floating_point().len();
    assert_eq!(total, arena.all().len());
    // The unit slices are contiguous views of the same decode — no
    // workload is duplicated or re-decoded for the per-unit sweeps.
    for (slice_w, all_w) in arena
        .integer()
        .iter()
        .chain(arena.floating_point())
        .zip(arena.all())
    {
        assert_eq!(slice_w.name, all_w.name);
        assert_eq!(slice_w.program, all_w.program);
    }
}
